"""Replicated promotion: retrain once, checkpoint once, fan out bitwise.

The cluster trains exactly one *primary* model — at the router, through
the existing :class:`~repro.serve.retrain.RetrainLoop` and (optionally)
:class:`~repro.serve.retrain.PromotionGuard`. Every promoted update is
checkpointed into the shared :class:`~repro.store.ArtifactStore` with a
lineage edge to the previous promotion (PR 5's durable-run machinery,
unchanged), and then *fanned out by digest*: each shard ``warm_restart``s
from the store, never from bytes on the RPC wire. Replicas are therefore
bitwise replicas, and a worker respawned mid-session restores the same
lineage digest every healthy shard is serving — which is why a
kill-a-worker drill leaves the scenario digest untouched.

This module is the cluster's *background* path: it may execute ground
truth and retrain, which is exactly what flow rule R011 bans from
``cluster/router.py`` and ``cluster/worker.py``.
"""

from __future__ import annotations

from repro.ce.deployment import DeployedEstimator
from repro.cluster.router import ClusterRequest, ClusterRouter
from repro.serve.retrain import PromotionGuard, RetrainEvent, RetrainLoop
from repro.serve.server import DONE
from repro.serve.stats import ServeStats
from repro.store.store import ArtifactStore, RunHandle
from repro.workload.workload import Workload


def seed_checkpoint(store: ArtifactStore, model) -> str:
    """Store the primary's current parameters; every worker boots from it."""
    return store.put_checkpoint(model.full_state_dict()).digest


class ClusterPromotion:
    """Wires the retrain loop's promotions into a cluster-wide fan-out."""

    def __init__(
        self,
        deployed: DeployedEstimator,
        router: ClusterRouter,
        run: RunHandle,
        validation: Workload | None = None,
        guard_factor: float | None = None,
        retrain_every: int = 64,
        stats: ServeStats | None = None,
    ) -> None:
        self.router = router
        self.run = run
        self.guard = (
            PromotionGuard(validation, factor=guard_factor)
            if guard_factor is not None and validation is not None
            else None
        )
        self.retrain = RetrainLoop(
            deployed,
            retrain_every=retrain_every,
            guard=self.guard,
            on_promote=self._fan_out,
            stats=stats,
            run=run,
        )
        self.broadcasts: list[dict] = []
        # The router consults the promotion lineage when it warm-restarts
        # a respawned replacement, and feeds every completed request back
        # as retrain-observation input.
        router.lineage_digest = self.lineage_digest
        router.on_complete = self.observe

    # ------------------------------------------------------------------
    # observation + lineage
    # ------------------------------------------------------------------
    def observe(self, request: ClusterRequest) -> None:
        """Completed requests are the executed workload the DBMS retrains on."""
        if request.status == DONE:
            self.retrain.observe(request.query)

    def lineage_digest(self) -> str | None:
        """The digest every replica should currently be serving."""
        last = self.run.last_event("promotion")
        return None if last is None else last.get("digest")

    # ------------------------------------------------------------------
    # the promotion round
    # ------------------------------------------------------------------
    def flush(self) -> RetrainEvent | None:
        """Run one retrain round on the buffered workload (see RetrainLoop)."""
        return self.retrain.flush()

    def _fan_out(self) -> None:
        """A promotion landed: broadcast its digest to every shard."""
        digest = self.lineage_digest()
        if digest is None:  # pragma: no cover - on_promote implies a digest
            return
        replicas = self.router.warm_restart_all(digest)
        self.broadcasts.append({
            "digest": digest,
            "round": len(self.retrain.events) - 1,
            "replicas": dict(replicas),
        })
