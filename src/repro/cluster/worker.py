"""One shard of the serve cluster: per-tenant replicas behind framed RPC.

A :class:`ShardWorker` owns everything its ring span needs — the dataset
schema, the query encoder, and one estimator replica (plus estimate
cache) *per tenant* — and answers the router's frames: ``ping``,
``estimate`` (shed expired requests, batch the rest per tenant through
one ``encode_many`` + one fused forward), ``warm_restart`` (reseat every
replica bitwise from a store checkpoint digest), ``stats``,
``quarantine`` (stop accepting estimate work — the ops plane's planned
removal, acknowledged with a final telemetry snapshot), and
``shutdown``.

Workers never train. They are pure replicas: parameters only ever change
through ``warm_restart`` from the shared :class:`~repro.store.ArtifactStore`,
which is what makes the replicated promotion protocol deterministic — a
respawned replacement loading the same lineage digest is byte-for-byte
the worker it replaced. This module is an estimate hot path, so flow
rule R011 bans ground-truth/retrain calls here exactly as it does in
``serve/server.py``; retraining lives in :mod:`repro.cluster.promotion`.

:func:`worker_main` is the spawned-process entrypoint; its argument
:class:`WorkerSpec` is deliberately plain data (strings, ints, tuples)
so it crosses the pickle boundary that concurrency rule R013 audits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serve.cache import EstimateCache
from repro.serve.server import DONE, SHED
from repro.store.faults import FaultInjector, FaultSpec
from repro.utils.clock import ManualClock, install_clock

#: Fault site reached at the top of every ``estimate`` frame a worker
#: handles; drills kill worker W at its n-th batch via
#: ``FaultSpec(site=f"cluster:worker:{W}:estimate", ordinal=n)``.
ESTIMATE_SITE = "cluster:worker:{worker_id}:estimate"


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs, as spawn-safe plain data.

    Attributes:
        worker_id: stable shard identity; survives respawn (the
            replacement takes over the dead worker's ring spans).
        dataset / model_type / scale / seed: the scenario coordinates;
            the worker rebuilds schema + encoder + model skeletons from
            these, then loads parameters from the store.
        store_root: artifact-store root; checkpoints never cross the RPC
            wire, only their digests do.
        initial_digest: checkpoint every replica boots from.
        tenants: tenant names this cluster serves (replicas instantiate
            lazily, only for tenants actually routed here).
        cache_capacity: per-tenant estimate-cache capacity.
        faults: drill schedule as ``(site, kind, ordinal)`` tuples —
            kept as plain tuples (not FaultSpec objects) so the spec
            stays trivially picklable across the spawn boundary.
    """

    worker_id: int
    dataset: str
    model_type: str
    scale: str
    seed: int
    store_root: str
    initial_digest: str
    tenants: tuple[str, ...] = ()
    cache_capacity: int = 512
    faults: tuple[tuple[str, str, int], ...] = ()


@dataclass
class WorkerTelemetry:
    """Counters one worker reports through the ``stats`` frame."""

    frames: int = 0
    served: int = 0
    shed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    batches: int = 0
    restarts: int = 0
    tenants_active: int = 0

    def as_dict(self) -> dict:
        return {
            "frames": self.frames,
            "served": self.served,
            "shed": self.shed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "batches": self.batches,
            "restarts": self.restarts,
            "tenants_active": self.tenants_active,
        }


def serialize_query(query) -> list:
    """Wire form of a query: canonical tables + sorted predicate rows."""
    return [
        sorted(query.tables),
        sorted(
            [table, column, float(low), float(high)]
            for (table, column), (low, high) in query.predicates.items()
        ),
    ]


class ShardWorker:
    """The request handler hosted by one worker (process or inline)."""

    def __init__(self, spec: WorkerSpec, clock: ManualClock | None = None) -> None:
        from repro.datasets.registry import load_dataset
        from repro.store.store import ArtifactStore
        from repro.utils.config import get_scale
        from repro.workload.encoding import QueryEncoder

        self.spec = spec
        self.clock = clock or ManualClock(domain=f"worker-{spec.worker_id}")
        self.telemetry = WorkerTelemetry()
        self.quarantined = False
        self.injector = FaultInjector(
            [FaultSpec(site=site, kind=kind, ordinal=ordinal)
             for site, kind, ordinal in spec.faults]
        )
        self._estimate_site = ESTIMATE_SITE.format(worker_id=spec.worker_id)
        self._store = ArtifactStore(spec.store_root)
        self._scale = get_scale(spec.scale)
        database = load_dataset(spec.dataset, scale=self._scale, seed=spec.seed)
        self._schema = database.schema
        self._encoder = QueryEncoder(self._schema)
        self._current_digest = spec.initial_digest
        self._state = self._store.get_checkpoint(spec.initial_digest)
        self._models: dict[str, object] = {}
        self._caches: dict[str, EstimateCache] = {}
        self._queries: dict[tuple, object] = {}  # wire form -> Query memo

    # ------------------------------------------------------------------
    # replicas
    # ------------------------------------------------------------------
    def replica(self, tenant: str):
        """The tenant's estimator replica (lazily built, then reused)."""
        model = self._models.get(tenant)
        if model is None:
            from repro.ce.registry import create_model

            model = create_model(
                self.spec.model_type,
                self._encoder,
                hidden_dim=self._scale.hidden_dim,
                seed=self.spec.seed,
            )
            model.load_full_state_dict(self._state)
            self._models[tenant] = model
            self._caches[tenant] = EstimateCache(capacity=self.spec.cache_capacity)
            self.telemetry.tenants_active = len(self._models)
        return model

    def _rebuild_query(self, wire: list):
        from repro.db.query import Query

        key = (tuple(wire[0]), tuple(tuple(row) for row in wire[1]))
        query = self._queries.get(key)
        if query is None:
            predicates = {
                (table, column): (low, high)
                for table, column, low, high in wire[1]
            }
            query = Query.build(self._schema, wire[0], predicates)
            self._queries[key] = query
        return query

    # ------------------------------------------------------------------
    # frame handlers
    # ------------------------------------------------------------------
    def handle(self, kind: str, payload):
        """Dispatch one request payload; returns the reply payload."""
        if kind == "ping":
            self.clock.sync(float(payload.get("now", 0.0)))
            return {"worker_id": self.spec.worker_id, "now": self.clock()}
        if kind == "estimate":
            return self._handle_estimate(payload)
        if kind == "warm_restart":
            return self._handle_warm_restart(payload)
        if kind == "stats":
            return self.telemetry.as_dict()
        if kind == "quarantine":
            self.quarantined = True
            return {
                "worker_id": self.spec.worker_id,
                "quarantined": True,
                "telemetry": self.telemetry.as_dict(),
            }
        if kind == "shutdown":
            return {"worker_id": self.spec.worker_id, "stopping": True}
        raise ValueError(f"unknown frame kind {kind!r}")

    def _handle_estimate(self, payload) -> dict:
        if self.quarantined:
            # The router must never route here after a quarantine ack;
            # answering with an error (not silence) makes a routing bug
            # loud instead of a hang.
            raise ValueError(
                f"worker {self.spec.worker_id} is quarantined and no "
                f"longer accepts estimate frames"
            )
        self.telemetry.frames += 1
        self.injector.reach(self._estimate_site)
        now = float(payload["now"])
        self.clock.sync(now)
        requests = payload["requests"]
        results: list[list] = [None] * len(requests)  # type: ignore[list-item]
        by_tenant: dict[str, list[int]] = {}
        for index, (tenant, wire, deadline) in enumerate(requests):
            if deadline is not None and now > float(deadline):
                results[index] = [None, SHED, False]
                self.telemetry.shed += 1
                continue
            by_tenant.setdefault(tenant, []).append(index)
        for tenant in sorted(by_tenant):
            indices = by_tenant[tenant]
            model = self.replica(tenant)
            cache = self._caches[tenant]
            misses: list[int] = []
            for index in indices:
                query = self._rebuild_query(requests[index][1])
                cached = cache.get(query)
                if cached is None:
                    misses.append(index)
                else:
                    results[index] = [cached, DONE, True]
                    self.telemetry.cache_hits += 1
            if misses:
                queries = [self._rebuild_query(requests[i][1]) for i in misses]
                encodings = self._encoder.encode_many(queries)
                # One single-row forward per miss, never one fused GEMM:
                # a batched matmul's low bits depend on which rows share
                # the batch, so a cached value would not be bitwise equal
                # to its recomputation — and the kill-drill digest rests
                # on exactly that equality.
                for offset, index in enumerate(misses):
                    value = float(
                        model.estimate_encoded(encodings[offset:offset + 1])[0]
                    )
                    cache.put(queries[offset], value)
                    results[index] = [value, DONE, False]
                self.telemetry.cache_misses += len(misses)
            self.telemetry.batches += 1
        self.telemetry.served += sum(1 for r in results if r[1] == DONE)
        return {"worker_id": self.spec.worker_id, "results": results}

    def _handle_warm_restart(self, payload) -> dict:
        digest = str(payload["digest"])
        if digest != self._current_digest:
            self._state = self._store.get_checkpoint(digest)
            self._current_digest = digest
            for model in self._models.values():
                model.load_full_state_dict(self._state)
            self.telemetry.restarts += 1
        # A stale cached estimate under new parameters would be silently
        # wrong; promotion always invalidates, exactly like serve's
        # on_promote wiring.
        for cache in self._caches.values():
            cache.invalidate()
        return {
            "worker_id": self.spec.worker_id,
            "digest": self._current_digest,
            "replicas": len(self._models),
        }

    # ------------------------------------------------------------------
    # framed-bytes surface (shared by both transports)
    # ------------------------------------------------------------------
    def handle_bytes(self, data: bytes) -> list[bytes]:
        """Decode one request frame, handle it, return the reply frames."""
        from repro.cluster.rpc import decode_frame, encode_frame

        kind, seq, payload = decode_frame(data)
        try:
            reply = self.handle(kind, payload)
        except Exception as exc:  # noqa: R003 - the RPC boundary must answer, not die
            return [encode_frame("error", seq, f"{type(exc).__name__}: {exc}")]
        return [encode_frame(kind, seq, reply)]


def worker_main(connection, spec: WorkerSpec) -> int:
    """Spawned-process entrypoint: serve frames until shutdown or crash.

    Pins this process's clock domain (``worker-<id>``) and serves the
    pipe. An injected :class:`~repro.store.faults.CrashPoint` terminates
    the process — the one place "swallowing" it is correct, because the
    process exiting *is* the simulated death the router must observe as
    a closed pipe.
    """
    from repro.cluster.rpc import EndpointClosed, PipeEndpoint, decode_frame
    from repro.store.faults import CrashPoint

    clock = ManualClock(domain=f"worker-{spec.worker_id}")
    install_clock(clock)
    worker = ShardWorker(spec, clock=clock)
    endpoint = PipeEndpoint(connection)
    try:
        while True:
            data = endpoint.recv()
            kind, _seq, _payload = decode_frame(data)
            for reply in worker.handle_bytes(data):
                endpoint.send(reply)
            if kind == "shutdown":
                return 0
    except CrashPoint:
        return 3
    except EndpointClosed:
        return 0  # router went away: nothing left to serve
    finally:
        endpoint.close()
