"""``pace-repro cluster-sim``: sharded serving under attack + drills.

The cluster twin of :mod:`repro.serve.scenario`: one seeded multi-tenant
traffic trace (benign clients mixed with a PACE attacker) is served by a
router sharding over N workers, twice — unguarded and guarded promotion —
under a router :class:`~repro.utils.clock.ManualClock`, so every latency,
shed, promotion, and Q-error in the report is a pure function of the
config.

Determinism is summarized in one *scenario digest*: the SHA-256 of the
canonical JSON of the session's deterministic core (config coordinates,
the full per-request completion trace, promotion lineage digests, the
Q-error trajectory, and the primary's final checkpoint digest).
Wall-clock-ish extras (worker telemetry, compile-cache stats) stay out of
the core. :func:`run_cluster_drill` is built on that digest: it runs the
same guarded session twice — once undisturbed, once with a
``faults.py``-driven kill of one worker mid-traffic — and checks the two
digests are byte-identical, which is the whole failure-handling story
(router re-dispatch + respawn + lineage warm-restart) in one equality.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass

from repro.ce.deployment import DeployedEstimator
from repro.ce.trainer import evaluate_q_errors
from repro.cluster.promotion import ClusterPromotion, seed_checkpoint
from repro.cluster.router import ClusterRequest, ClusterRouter
from repro.cluster.worker import ESTIMATE_SITE, WorkerSpec
from repro.db.query import Query
from repro.harness.experiments import (
    AttackScenario,
    craft_poison,
    get_scenario,
    get_surrogate,
)
from repro.serve.stats import ServeStats
from repro.store.io import canonical_json_bytes
from repro.store.store import ArtifactStore
from repro.utils.clock import ManualClock, use_clock
from repro.utils.errors import ReproError
from repro.utils.rng import derive_rng
from repro.workload.workload import Workload

SCHEMA_VERSION = 1

#: Default on-disk location of the cluster's shared promotion store.
DEFAULT_CLUSTER_STORE = "cluster-store"


@dataclass(frozen=True)
class ClusterSimConfig:
    """Everything one cluster-sim run depends on (and nothing else)."""

    dataset: str = "dmv"
    model_type: str = "fcn"
    scale: str = "smoke"
    seed: int = 0
    workers: int = 2
    tenants: int = 4
    vnodes: int = 64
    rounds: int = 2
    requests_per_round: int = 48
    qps: float = 512.0
    service_hz: float = 64.0
    poison_fraction: float = 0.5
    attack_method: str = "pace"
    timeout: float = 0.5
    max_queue: int = 256
    max_batch: int = 16
    guard_factor: float = 1.5
    cache_capacity: int = 512
    heartbeat_every: int = 4
    transport: str = "inline"
    store_root: str = DEFAULT_CLUSTER_STORE
    drill_worker: int = 0
    drill_round: int = 2


@dataclass(frozen=True)
class TenantArrival:
    """One scheduled request: when, which tenant, what, and who sent it."""

    at: float
    tenant: str
    query: Query
    client: str


class ClusterTraffic:
    """Seeded open-loop multi-tenant arrival process (one RNG stream)."""

    def __init__(
        self,
        benign_pool: list[Query],
        poison_pool: list[Query],
        tenants: list[str],
        qps: float,
        poison_fraction: float,
        seed: int,
    ) -> None:
        if not benign_pool:
            raise ReproError("cluster traffic needs a non-empty benign pool")
        if not tenants:
            raise ReproError("cluster traffic needs at least one tenant")
        if poison_fraction > 0.0 and not poison_pool:
            raise ReproError("poison_fraction > 0 requires a non-empty poison pool")
        self.benign_pool = list(benign_pool)
        self.poison_pool = list(poison_pool)
        self.tenants = list(tenants)
        self.qps = float(qps)
        self.poison_fraction = float(poison_fraction)
        self._rng = derive_rng(seed + 101)

    def arrivals(self, n: int, start: float = 0.0) -> list[TenantArrival]:
        """The next ``n`` arrivals; successive calls continue the stream."""
        out: list[TenantArrival] = []
        now = float(start)
        for _ in range(n):
            now += float(self._rng.exponential(1.0 / self.qps))
            tenant = self.tenants[int(self._rng.integers(len(self.tenants)))]
            attacker = (
                self.poison_pool
                and float(self._rng.random()) < self.poison_fraction
            )
            pool = self.poison_pool if attacker else self.benign_pool
            query = pool[int(self._rng.integers(len(pool)))]
            out.append(TenantArrival(
                at=now, tenant=tenant, query=query,
                client="attacker" if attacker else "benign",
            ))
        return out


def scenario_digest(core: dict) -> str:
    """SHA-256 over the canonical JSON of a session's deterministic core."""
    return hashlib.sha256(canonical_json_bytes(core)).hexdigest()


def drive_round(
    router: ClusterRouter,
    traffic: ClusterTraffic,
    clock: ManualClock,
    requests: int,
    service_hz: float,
    timeout: float | None,
    heartbeat_every: int = 0,
) -> tuple[list[ClusterRequest], int]:
    """Replay ``requests`` arrivals through the router, then drain.

    Advances the router's clock through every arrival instant and every
    ``1/service_hz`` service instant, dispatching one wave per instant
    (and a heartbeat sweep every ``heartbeat_every`` waves). Returns the
    submitted requests (in submission order, all finalized) and the wave
    count.
    """
    period = 1.0 / service_hz
    next_service = clock() + period
    waves = 0
    submitted: list[ClusterRequest] = []

    def wave(now: float) -> None:
        nonlocal waves, next_service
        clock.set(now)
        router.dispatch(now)
        waves += 1
        if heartbeat_every and waves % heartbeat_every == 0:
            router.heartbeat(now)
        next_service += period

    for arrival in traffic.arrivals(requests, start=clock()):
        while next_service <= arrival.at:
            wave(next_service)
        clock.set(arrival.at)
        submitted.append(router.submit(
            arrival.tenant, arrival.query, timeout=timeout, client=arrival.client
        ))
    while router.pending() > 0:
        wave(next_service)
    return submitted, waves


def _fresh_run(store: ArtifactStore, run_id: str, params: dict, seed: int):
    if store.has_run(run_id):
        store.delete_run(run_id)
    return store.create_run("cluster-sim", run_id, params=params, seed=seed)


def _worker_specs(
    config: ClusterSimConfig,
    store: ArtifactStore,
    initial_digest: str,
    tenants: list[str],
    faults: dict[int, tuple[tuple[str, str, int], ...]] | None = None,
) -> list[WorkerSpec]:
    faults = faults or {}
    return [
        WorkerSpec(
            worker_id=wid,
            dataset=config.dataset,
            model_type=config.model_type,
            scale=config.scale,
            seed=config.seed,
            store_root=str(store.root),
            initial_digest=initial_digest,
            tenants=tuple(tenants),
            cache_capacity=config.cache_capacity,
            faults=faults.get(wid, ()),
        )
        for wid in range(config.workers)
    ]


def _digest_config(config: ClusterSimConfig) -> dict:
    """The config coordinates that belong in the scenario digest.

    ``store_root`` is a filesystem location, not behavior, and the two
    transports are bitwise-equivalent by design — both stay out so the
    same scenario digests identically wherever (and however) it runs.
    """
    core = asdict(config)
    core.pop("store_root")
    core.pop("transport")
    return core


def run_session(
    scenario: AttackScenario,
    poison: list[Query],
    validation: Workload,
    evaluation: Workload,
    config: ClusterSimConfig,
    store: ArtifactStore,
    guarded: bool,
    run_id: str,
    faults: dict[int, tuple[tuple[str, str, int], ...]] | None = None,
    respawn: bool = True,
) -> dict:
    """Serve one full cluster session from clean parameters; one arm.

    ``respawn=False`` runs the router in degraded mode: a failed worker is
    dropped from the ring and its work re-keyed to the survivors instead
    of being replaced (:func:`run_reroute_drill` exercises this).
    """
    scenario.reset()
    model = scenario.model
    deployed = DeployedEstimator(
        model, scenario.executor, update_steps=scenario.scale.update_steps
    )
    tenants = [f"tenant-{i:02d}" for i in range(config.tenants)]
    stats = ServeStats()
    clock = ManualClock(domain="router")
    with use_clock(clock):
        baseline = float(evaluate_q_errors(model, evaluation).mean())
        initial_digest = seed_checkpoint(store, model)
        router = ClusterRouter(
            _worker_specs(config, store, initial_digest, tenants, faults),
            transport=config.transport,
            vnodes=config.vnodes,
            max_queue=config.max_queue,
            max_batch=config.max_batch,
            stats=stats,
            respawn=respawn,
            clock=clock,
        )
        router.start()
        run = _fresh_run(store, run_id, params=_digest_config(config), seed=config.seed)
        promotion = ClusterPromotion(
            deployed,
            router,
            run,
            validation=validation,
            guard_factor=config.guard_factor if guarded else None,
            retrain_every=config.requests_per_round,
            stats=stats,
        )
        traffic = ClusterTraffic(
            benign_pool=scenario.train_workload.queries,
            poison_pool=list(poison),
            tenants=tenants,
            qps=config.qps,
            poison_fraction=config.poison_fraction if poison else 0.0,
            seed=config.seed,
        )
        trace: list[list] = []
        rounds = []
        try:
            for index in range(config.rounds):
                submitted, waves = drive_round(
                    router, traffic, clock,
                    requests=config.requests_per_round,
                    service_hz=config.service_hz,
                    timeout=config.timeout,
                    heartbeat_every=config.heartbeat_every,
                )
                for request in submitted:
                    trace.append([
                        index, request.tenant, request.client,
                        request.submitted_at, request.completed_at,
                        request.status, request.estimate,
                    ])
                event = promotion.flush()
                mean_qerror = float(evaluate_q_errors(model, evaluation).mean())
                frames = {
                    str(wid): int(snapshot.get("frames", 0))
                    for wid, snapshot in router.worker_stats().items()
                }
                rounds.append({
                    "round": index,
                    "arrivals": len(submitted),
                    "benign": sum(1 for r in submitted if r.client == "benign"),
                    "attacker": sum(1 for r in submitted if r.client == "attacker"),
                    "waves": waves,
                    "mean_qerror": mean_qerror,
                    "promoted": bool(event.promoted) if event else False,
                    "rolled_back": bool(event.rolled_back) if event else False,
                    "update_rejected": event.rejected if event else 0,
                    "worker_frames": frames,
                })
            final_checkpoint = seed_checkpoint(store, model)
            run.set_status("done")
            run.commit()
            session_seconds = clock()
            worker_stats = {
                str(wid): snapshot
                for wid, snapshot in router.worker_stats().items()
            }
        finally:
            router.shutdown()
    final = rounds[-1]["mean_qerror"] if rounds else baseline
    promotions = [b["digest"] for b in promotion.broadcasts]
    core = {
        "config": _digest_config(config),
        "guarded": guarded,
        "initial_checkpoint": initial_digest,
        "requests": trace,
        "promotions": promotions,
        "qerror_trajectory": [r["mean_qerror"] for r in rounds],
        "final_checkpoint": final_checkpoint,
    }
    arm = {
        "guarded": guarded,
        "digest": scenario_digest(core),
        "baseline_qerror": baseline,
        "final_qerror": final,
        "degradation": final / baseline if baseline > 0.0 else None,
        "qerror_trajectory": core["qerror_trajectory"],
        "rounds": rounds,
        "session_seconds": session_seconds,
        "throughput_qps": stats.throughput(session_seconds),
        "initial_checkpoint": initial_digest,
        "final_checkpoint": final_checkpoint,
        "promotions": promotions,
        "respawns": router.respawns,
        "reroutes": router.reroutes,
        "quarantines": router.quarantines,
        "workers_after": len(worker_stats),
        "run_id": run_id,
        "workers": worker_stats,
        "ring_spans": router.ring.spans(),
        "stats": stats.to_json(),
        "retrain_events": [e.as_dict() for e in promotion.retrain.events],
    }
    if promotion.guard is not None:
        arm["guard"] = {
            "factor": promotion.guard.factor,
            "baseline_qerror": promotion.guard.baseline_qerror,
            "admissions": promotion.guard.admissions,
            "vetoes": promotion.guard.vetoes,
        }
    return arm


def _build_world(config: ClusterSimConfig):
    scenario = get_scenario(
        config.dataset, config.model_type, scale=config.scale, seed=config.seed
    )
    poison: list[Query] = []
    if config.poison_fraction > 0.0 and config.attack_method != "clean":
        # Pre-seat the true-family surrogate so crafting never gambles the
        # simulation on smoke-scale type speculation (as serve-sim does).
        get_surrogate(scenario, model_type=scenario.model_type)
        poison, *_ = craft_poison(scenario, config.attack_method, use_detector=False)
    validation, evaluation = scenario.test_workload.split(0.5, seed=config.seed + 23)
    return scenario, poison, validation, evaluation


def run_cluster_sim(config: ClusterSimConfig | None = None) -> dict:
    """Run the guarded-vs-unguarded sharded serving simulation."""
    config = config or ClusterSimConfig()
    scenario, poison, validation, evaluation = _build_world(config)
    store = ArtifactStore(config.store_root)
    unguarded = run_session(
        scenario, poison, validation, evaluation, config, store,
        guarded=False, run_id=f"cluster-unguarded-seed{config.seed}",
    )
    guarded = run_session(
        scenario, poison, validation, evaluation, config, store,
        guarded=True, run_id=f"cluster-guarded-seed{config.seed}",
    )
    scenario.reset()
    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "pace-repro cluster-sim",
        "config": asdict(config),
        "poison_pool": len(poison),
        "validation_queries": len(validation),
        "evaluation_queries": len(evaluation),
        "arms": {"unguarded": unguarded, "guarded": guarded},
        "guard_effect": {
            "unguarded_final_qerror": unguarded["final_qerror"],
            "guarded_final_qerror": guarded["final_qerror"],
            "qerror_ratio": (
                unguarded["final_qerror"] / guarded["final_qerror"]
                if guarded["final_qerror"] > 0.0 else None
            ),
            "guard_wins": guarded["final_qerror"] <= unguarded["final_qerror"],
        },
    }


def run_cluster_drill(config: ClusterSimConfig | None = None) -> dict:
    """Kill one worker mid-traffic; prove the digest does not move.

    Two guarded sessions over the identical seeded trace:

    1. **reference** — undisturbed; per-round worker telemetry records how
       many estimate frames the drill target served through round
       ``drill_round - 1``;
    2. **drilled** — the target's spec carries a
       :class:`~repro.store.faults.FaultSpec` firing a CrashPoint on its
       next estimate frame after that, i.e. mid-traffic in
       ``drill_round``, *after* the previous round's promotion — so the
       respawned replacement must warm-restart from the *promoted*
       lineage digest, not the boot checkpoint, to keep the trace equal.

    Both sessions run the *unguarded* arm: every round's retrain
    promotes, so the drill provably crosses a promotion boundary and the
    replacement restores replicated lineage, not its birth checkpoint.
    The two scenario digests must match byte for byte.
    """
    config = config or ClusterSimConfig()
    if not 1 <= config.drill_round <= config.rounds:
        raise ReproError(
            f"drill_round must be in [1, {config.rounds}], got {config.drill_round}"
        )
    scenario, poison, validation, evaluation = _build_world(config)
    store = ArtifactStore(config.store_root)
    reference = run_session(
        scenario, poison, validation, evaluation, config, store,
        guarded=False, run_id=f"cluster-drill-ref-seed{config.seed}",
    )
    # Frames the target served in rounds *before* the drill round; the
    # fault fires on the frame after that — mid-traffic, post-promotion.
    target = str(config.drill_worker)
    prior = config.drill_round - 2  # index of the last pre-drill round
    frames_before = (
        reference["rounds"][prior]["worker_frames"].get(target, 0)
        if prior >= 0 else 0
    )
    site = ESTIMATE_SITE.format(worker_id=config.drill_worker)
    faults = {
        config.drill_worker: ((site, "crash", int(frames_before) + 1),),
    }
    drilled = run_session(
        scenario, poison, validation, evaluation, config, store,
        guarded=False, run_id=f"cluster-drill-kill-seed{config.seed}",
        faults=faults,
    )
    scenario.reset()
    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "pace-repro cluster-sim --drill",
        "config": asdict(config),
        "drill": {
            "worker": config.drill_worker,
            "round": config.drill_round,
            "site": site,
            "ordinal": int(frames_before) + 1,
            "fired": drilled["respawns"] > 0,
        },
        "reference": reference,
        "drilled": drilled,
        "identical": reference["digest"] == drilled["digest"],
    }


def run_reroute_drill(config: ClusterSimConfig | None = None) -> dict:
    """Kill one worker mid-traffic with respawn *disabled*; prove service.

    The degraded-mode counterpart of :func:`run_cluster_drill`: the same
    fault kills the same worker at the same estimate frame, but the router
    runs with ``respawn=False``, so recovery is a ring removal plus
    re-keying the stranded work to the survivors. A digest equality is
    impossible here by construction — the surviving topology serves
    different shards — so the verdict is liveness instead:

    * the re-route branch actually fired (``reroutes >= 1``);
    * every submitted request was still finalized (nothing lost);
    * exactly one worker is gone at session end.
    """
    config = config or ClusterSimConfig()
    if config.workers < 2:
        raise ReproError(
            f"the re-route drill needs >= 2 workers, got {config.workers}"
        )
    if not 1 <= config.drill_round <= config.rounds:
        raise ReproError(
            f"drill_round must be in [1, {config.rounds}], got {config.drill_round}"
        )
    scenario, poison, validation, evaluation = _build_world(config)
    store = ArtifactStore(config.store_root)
    reference = run_session(
        scenario, poison, validation, evaluation, config, store,
        guarded=False, run_id=f"cluster-reroute-ref-seed{config.seed}",
    )
    target = str(config.drill_worker)
    prior = config.drill_round - 2  # index of the last pre-drill round
    frames_before = (
        reference["rounds"][prior]["worker_frames"].get(target, 0)
        if prior >= 0 else 0
    )
    site = ESTIMATE_SITE.format(worker_id=config.drill_worker)
    faults = {
        config.drill_worker: ((site, "crash", int(frames_before) + 1),),
    }
    drilled = run_session(
        scenario, poison, validation, evaluation, config, store,
        guarded=False, run_id=f"cluster-reroute-kill-seed{config.seed}",
        faults=faults, respawn=False,
    )
    scenario.reset()
    stats = drilled["stats"]
    finalized = stats["completed"] + stats["shed"] + stats["rejected"]
    fired = drilled["reroutes"] > 0
    all_finalized = finalized == stats["submitted"]
    survivors_ok = drilled["workers_after"] == config.workers - 1
    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "pace-repro cluster-sim --reroute-drill",
        "config": asdict(config),
        "drill": {
            "worker": config.drill_worker,
            "round": config.drill_round,
            "site": site,
            "ordinal": int(frames_before) + 1,
            "fired": fired,
            "all_finalized": all_finalized,
            "workers_after": drilled["workers_after"],
            "survivors_ok": survivors_ok,
            "ok": bool(fired and all_finalized and survivors_ok),
        },
        "reference": reference,
        "drilled": drilled,
    }


def format_cluster_report(report: dict) -> str:
    """Console summary for ``pace-repro cluster-sim``."""
    from repro.metrics import render_table

    config = report["config"]
    rows = []
    for arm_name in ("unguarded", "guarded"):
        arm = report["arms"][arm_name]
        stats = arm["stats"]
        rows.append([
            arm_name,
            f"{arm['baseline_qerror']:.3f}",
            f"{arm['final_qerror']:.3f}",
            f"{arm['degradation']:.2f}x" if arm["degradation"] is not None else "-",
            f"{stats['promotions']}/{stats['rollbacks']}",
            f"{stats['completed']}/{stats['shed']}/{stats['rejected']}",
            arm["digest"][:12],
        ])
    lines = [render_table(
        ["arm", "clean q-err", "final q-err", "degradation",
         "promote/rollback", "done/shed/rej", "digest"],
        rows,
        title=(
            f"pace-repro cluster-sim · {config['dataset']}/{config['model_type']} · "
            f"{config['workers']} workers x {config['tenants']} tenants · "
            f"{config['attack_method']} @ poison={config['poison_fraction']:.0%} · "
            f"seed={config['seed']}"
        ),
    )]
    effect = report["guard_effect"]
    if effect["qerror_ratio"] is not None:
        lines.append(
            f"\nguard effect: final q-error {effect['unguarded_final_qerror']:.3f} "
            f"(unguarded) vs {effect['guarded_final_qerror']:.3f} (guarded) — "
            f"{effect['qerror_ratio']:.2f}x better with the guard"
        )
    return "\n".join(lines)


def format_drill_report(report: dict) -> str:
    """Console summary for ``pace-repro cluster-sim --drill``."""
    drill = report["drill"]
    ref, hit = report["reference"], report["drilled"]
    verdict = "IDENTICAL" if report["identical"] else "DIVERGED"
    return "\n".join([
        f"pace-repro cluster-sim --drill · kill worker {drill['worker']} at "
        f"estimate frame {drill['ordinal']} (round {drill['round']})",
        f"  drill fired:    {drill['fired']} "
        f"(respawns: reference {ref['respawns']}, drilled {hit['respawns']})",
        f"  reference:      {ref['digest']}",
        f"  drilled:        {hit['digest']}",
        f"  scenario digest: {verdict}",
    ])
