"""The cluster router: ring-sharded dispatch, health, failure recovery.

The router owns all client-visible state: per-worker FIFO queues (bounded
— backpressure is a router decision), the consistent-hash ring mapping
``(tenant, join-template)`` keys to workers, and the aggregate
:class:`~repro.serve.stats.ServeStats`. Workers are pure replicas, so a
worker dying loses *nothing the router still holds*: in-flight batches
are re-dispatched after recovery, queued requests never left the router.

Recovery has two modes:

* **respawn** (default) — the dead worker's identity is re-created from
  its spec (drill faults stripped — a drill fires once), the replacement
  ``warm_restart``s from the promotion lineage digest, and the failed
  batch is re-sent. Because recovery happens *within the same simulated
  service instant*, a drilled run's completion record is byte-identical
  to an undisturbed run's — the property `cluster-bench` verifies.
* **re-route** (``respawn=False``) — the dead node's ring spans fall to
  its successors and its queue is re-keyed through the ring; a degraded
  mode that keeps serving with N-1 workers.

Like ``serve/server.py``, this module is a latency-critical loop: flow
rule R011 bans ground-truth (``count``/``execute``) and trainer calls
here. Retraining and promotion live in :mod:`repro.cluster.promotion`.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.cluster.ring import HashRing, shard_key
from repro.cluster.rpc import (
    EndpointClosed,
    InlineEndpoint,
    PipeEndpoint,
    RpcChannel,
    RpcError,
    RpcTimeout,
)
from repro.cluster.worker import ShardWorker, WorkerSpec, serialize_query, worker_main
from repro.db.query import Query
from repro.serve.server import DONE, PENDING, REJECTED, SHED
from repro.serve.stats import ServeStats
from repro.utils.clock import ManualClock
from repro.utils.errors import ReproError

TRANSPORTS = ("inline", "process")


class ClusterError(ReproError):
    """The cluster cannot make progress (no live workers, bad config)."""


@dataclass
class ClusterRequest:
    """One in-flight request as the router tracks it."""

    tenant: str
    query: Query
    wire: list
    submitted_at: float
    deadline: float | None
    client: str
    key: str
    status: str = PENDING
    estimate: float | None = None
    completed_at: float | None = None
    from_cache: bool = False
    worker_id: int | None = None

    @property
    def latency(self) -> float | None:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


def node_label(worker_id: int) -> str:
    """The ring-node name of one worker identity."""
    return f"worker-{worker_id}"


class WorkerHandle:
    """One worker's transport endpoint + RPC channel, by either transport."""

    def __init__(self, spec: WorkerSpec, channel: RpcChannel) -> None:
        self.spec = spec
        self.channel = channel

    @property
    def alive(self) -> bool:
        return not self.channel.endpoint.closed

    def kill(self) -> None:
        """Forcibly end the worker (drill/test helper)."""
        self.channel.endpoint.close()

    def stop(self) -> None:
        """Graceful shutdown; closes the endpoint regardless."""
        try:
            self.channel.call("shutdown", {}, retries=0)
        except (RpcError, EndpointClosed):
            pass
        self.channel.endpoint.close()


class InlineWorkerHandle(WorkerHandle):
    """Deterministic in-process worker behind the same framed transport."""

    def __init__(self, spec: WorkerSpec, timeout: float, retries: int) -> None:
        self.worker = ShardWorker(spec)
        endpoint = InlineEndpoint(self.worker.handle_bytes)
        super().__init__(spec, RpcChannel(endpoint, timeout=timeout, retries=retries))


class ProcessWorkerHandle(WorkerHandle):
    """A real spawned worker process over a multiprocessing pipe."""

    def __init__(self, spec: WorkerSpec, timeout: float, retries: int) -> None:
        import multiprocessing as mp

        ctx = mp.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=worker_main, args=(child_conn, spec), daemon=True
        )
        self.process.start()
        child_conn.close()
        endpoint = PipeEndpoint(parent_conn)
        super().__init__(spec, RpcChannel(endpoint, timeout=timeout, retries=retries))

    @property
    def alive(self) -> bool:
        return self.process.is_alive() and not self.channel.endpoint.closed

    def kill(self) -> None:
        self.process.kill()
        self.process.join(timeout=10.0)
        self.channel.endpoint.close()

    def stop(self) -> None:
        super().stop()
        self.process.join(timeout=10.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=10.0)


def make_handle(
    spec: WorkerSpec, transport: str, timeout: float, retries: int
) -> WorkerHandle:
    if transport == "inline":
        return InlineWorkerHandle(spec, timeout, retries)
    if transport == "process":
        return ProcessWorkerHandle(spec, timeout, retries)
    raise ClusterError(f"unknown transport {transport!r}; expected one of {TRANSPORTS}")


class ClusterRouter:
    """Shards traffic across N workers through a consistent-hash ring."""

    def __init__(
        self,
        specs: list[WorkerSpec],
        transport: str = "inline",
        vnodes: int = 64,
        max_queue: int = 128,
        max_batch: int = 16,
        timeout: float = 10.0,
        retries: int = 1,
        stats: ServeStats | None = None,
        respawn: bool = True,
        lineage_digest: Callable[[], str | None] | None = None,
        clock: ManualClock | None = None,
    ) -> None:
        if not specs:
            raise ClusterError("a cluster needs at least one worker spec")
        if len({s.worker_id for s in specs}) != len(specs):
            raise ClusterError("worker ids must be unique")
        self.transport = transport
        self.max_queue = int(max_queue)
        self.max_batch = int(max_batch)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.stats = stats or ServeStats()
        self.respawn = respawn
        self.lineage_digest = lineage_digest
        self.clock = clock
        self.on_complete: Callable[[ClusterRequest], None] | None = None
        self._specs: dict[int, WorkerSpec] = {s.worker_id: s for s in specs}
        self.ring = HashRing(
            [node_label(wid) for wid in sorted(self._specs)], vnodes=vnodes
        )
        self._handles: dict[int, WorkerHandle] = {}
        self._queues: dict[int, deque[ClusterRequest]] = {
            wid: deque() for wid in sorted(self._specs)
        }
        self.respawns = 0
        self.reroutes = 0
        self.heartbeats = 0
        self.quarantines = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every worker and verify liveness with one ping each."""
        now = self._now()
        for wid in sorted(self._specs):
            self._handles[wid] = make_handle(
                self._specs[wid], self.transport, self.timeout, self.retries
            )
            reply = self._handles[wid].channel.call("ping", {"now": now})
            if reply.get("worker_id") != wid:
                raise ClusterError(
                    f"worker {wid} answered its ping as {reply.get('worker_id')!r}"
                )

    def shutdown(self) -> None:
        for handle in self._handles.values():
            handle.stop()
        self._handles.clear()

    def _now(self) -> float:
        if self.clock is not None:
            return self.clock()
        from repro.utils.clock import get_clock

        return get_clock()()

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------
    @property
    def worker_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._queues))

    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def worker_for(self, tenant: str, query: Query) -> int:
        """Which worker the ring currently assigns this request to."""
        node = self.ring.node_for(shard_key(tenant, query.tables))
        return int(node.rsplit("-", 1)[1])

    def submit(
        self,
        tenant: str,
        query: Query,
        timeout: float | None = None,
        client: str = "benign",
    ) -> ClusterRequest:
        """Route one request to its shard's queue (bounded: may reject)."""
        now = self._now()
        key = shard_key(tenant, query.tables)
        wid = int(self.ring.node_for(key).rsplit("-", 1)[1])
        request = ClusterRequest(
            tenant=tenant,
            query=query,
            wire=serialize_query(query),
            submitted_at=now,
            deadline=None if timeout is None else now + timeout,
            client=client,
            key=key,
            worker_id=wid,
        )
        self.stats.record_submitted()
        queue = self._queues[wid]
        if len(queue) >= self.max_queue:
            request.status = REJECTED
            request.completed_at = now
            self.stats.record_rejected()
            return request
        queue.append(request)
        self.stats.observe_queue_depth(self.pending())
        return request

    # ------------------------------------------------------------------
    # the service wave
    # ------------------------------------------------------------------
    def dispatch(self, now: float) -> list[ClusterRequest]:
        """Serve one wave: up to ``max_batch`` per worker, in parallel.

        Sends every worker its batch first, then collects replies in
        worker-id order — with the process transport the workers genuinely
        overlap; with the inline transport the ordering (and therefore
        every downstream observation) is identical by construction.
        """
        batches: dict[int, list[ClusterRequest]] = {}
        for wid in sorted(self._queues):
            queue = self._queues[wid]
            batch: list[ClusterRequest] = []
            while queue and len(batch) < self.max_batch:
                batch.append(queue.popleft())
            if batch:
                batches[wid] = batch
        finalized: list[ClusterRequest] = []
        sent: dict[int, int] = {}
        for wid in sorted(batches):
            try:
                sent[wid] = self._handles[wid].channel.begin(
                    "estimate", self._estimate_payload(batches[wid], now)
                )
            except EndpointClosed:
                pass  # collected (and recovered) below
        for wid in sorted(batches):
            batch = batches[wid]
            reply = None
            if wid in sent:
                try:
                    reply = self._handles[wid].channel.finish(sent[wid])
                except (EndpointClosed, RpcTimeout, RpcError):
                    reply = None
            if reply is None:
                reply = self._recover(wid, batch, now)
            if reply is None:
                continue  # re-route mode: the batch went back to queues
            self._finalize(batch, reply["results"], now)
            finalized.extend(batch)
        return finalized

    def _estimate_payload(self, batch: list[ClusterRequest], now: float) -> dict:
        return {
            "now": now,
            "requests": [[r.tenant, r.wire, r.deadline] for r in batch],
        }

    def _finalize(self, batch: list[ClusterRequest], results: list, now: float) -> None:
        for request, (estimate, status, from_cache) in zip(batch, results):
            request.status = status
            request.completed_at = now
            request.from_cache = bool(from_cache)
            if status == DONE:
                request.estimate = float(estimate)
                self.stats.record_completed(request.latency)
            elif status == SHED:
                self.stats.record_shed()
            if self.on_complete is not None:
                self.on_complete(request)

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def _recover(
        self, wid: int, batch: list[ClusterRequest], now: float
    ) -> dict | None:
        """A worker failed mid-wave: respawn (and retry) or re-route."""
        self._handles[wid].kill()
        if self.respawn:
            self._respawn(wid, now)
            if not batch:
                return {"results": []}
            return self._handles[wid].channel.call(
                "estimate", self._estimate_payload(batch, now)
            )
        # Degraded mode: drop the node, re-key its work through the ring.
        self.ring.remove(node_label(wid))
        if not len(self.ring):
            raise ClusterError("every worker is dead and respawn is disabled")
        self.reroutes += 1
        stranded = batch + list(self._queues.pop(wid))
        del self._handles[wid]
        del self._specs[wid]
        for request in stranded:
            new_wid = int(self.ring.node_for(request.key).rsplit("-", 1)[1])
            request.worker_id = new_wid
            self._queues[new_wid].append(request)
        return None

    def _respawn(self, wid: int, now: float) -> None:
        """Replace a dead worker: same identity, lineage-restored state."""
        # A drill fires once: the replacement must not inherit the fault
        # schedule that killed its predecessor.
        spec = dataclasses.replace(self._specs[wid], faults=())
        self._specs[wid] = spec
        handle = make_handle(spec, self.transport, self.timeout, self.retries)
        handle.channel.call("ping", {"now": now})
        digest = self.lineage_digest() if self.lineage_digest is not None else None
        handle.channel.call(
            "warm_restart", {"digest": digest or spec.initial_digest}
        )
        self._handles[wid] = handle
        self.respawns += 1

    def heartbeat(self, now: float | None = None) -> dict[int, bool]:
        """Ping every worker; recover any that miss their heartbeat."""
        now = self._now() if now is None else now
        self.heartbeats += 1
        health: dict[int, bool] = {}
        for wid in sorted(self._handles):
            handle = self._handles[wid]
            ok = handle.alive
            if ok:
                try:
                    handle.channel.call("ping", {"now": now})
                except (EndpointClosed, RpcTimeout, RpcError):
                    ok = False
            if not ok:
                self._recover(wid, [], now)
            health[wid] = ok
        return health

    # ------------------------------------------------------------------
    # cluster-wide operations
    # ------------------------------------------------------------------
    def warm_restart_all(self, digest: str) -> dict[int, int]:
        """Reseat every shard's replicas from one checkpoint digest."""
        replicas: dict[int, int] = {}
        for wid in sorted(self._handles):
            try:
                reply = self._handles[wid].channel.call(
                    "warm_restart", {"digest": digest}
                )
            except (EndpointClosed, RpcTimeout, RpcError):
                self._recover(wid, [], self._now())
                reply = self._handles[wid].channel.call(
                    "warm_restart", {"digest": digest}
                )
            if reply["digest"] != digest:
                raise ClusterError(
                    f"worker {wid} restarted onto {reply['digest'][:12]}…, "
                    f"expected {digest[:12]}…"
                )
            replicas[wid] = int(reply["replicas"])
        return replicas

    def worker_stats(self) -> dict[int, dict]:
        """Each live worker's telemetry snapshot (stats frames)."""
        out: dict[int, dict] = {}
        for wid in sorted(self._handles):
            try:
                out[wid] = self._handles[wid].channel.call("stats", {})
            except (EndpointClosed, RpcTimeout, RpcError):
                out[wid] = {"unreachable": True}
        return out

    def quarantine(self, wid: int) -> dict:
        """Drain one worker out of the ring (the ops plane's planned removal).

        Unlike :meth:`_recover`'s re-route branch — which reacts to a
        worker that already died — quarantine is deliberate: the worker
        gets a ``quarantine`` frame (so it stops accepting estimate work
        and acks with final telemetry), its ring spans fall to its
        successors, its queued requests are re-keyed through the ring
        (nothing is lost), and the handle is stopped.
        """
        if wid not in self._handles:
            raise ClusterError(f"unknown worker {wid}")
        if len(self._queues) <= 1:
            raise ClusterError("cannot quarantine the last worker")
        handle = self._handles[wid]
        acked = False
        final_telemetry: dict | None = None
        try:
            reply = handle.channel.call("quarantine", {}, retries=0)
            acked = bool(reply.get("quarantined"))
            final_telemetry = reply.get("telemetry")
        except (EndpointClosed, RpcTimeout, RpcError):
            acked = False  # already dead: proceed with the removal anyway
        self.ring.remove(node_label(wid))
        if not len(self.ring):
            raise ClusterError("quarantine would leave an empty ring")
        stranded = list(self._queues.pop(wid))
        handle.stop()
        del self._handles[wid]
        del self._specs[wid]
        for request in stranded:
            new_wid = int(self.ring.node_for(request.key).rsplit("-", 1)[1])
            request.worker_id = new_wid
            self._queues[new_wid].append(request)
        self.quarantines += 1
        return {
            "worker_id": wid,
            "acked": acked,
            "requeued": len(stranded),
            "telemetry": final_telemetry,
        }

    def kill_worker(self, wid: int) -> None:
        """Drill helper: forcibly end one worker mid-traffic."""
        if wid not in self._handles:
            raise ClusterError(f"unknown worker {wid}")
        self._handles[wid].kill()
