"""``pace-repro cluster-bench``: QPS scaling + the kill-a-worker drill.

Serves one fixed seeded request trace through clusters of 1, 2, 4, and 8
workers under the router's :class:`~repro.utils.clock.ManualClock` and
measures *simulated* throughput: requests completed divided by the
simulated makespan (arrival span + drain waves at ``service_hz``). Under
the wave-service model each worker serves up to ``max_batch`` requests
per ``1/service_hz`` instant, so the makespan for a fixed load is set by
the most-loaded shard — the bench therefore measures exactly what
sharding buys (parallel service) and exactly what limits it (ring
balance), and is bit-reproducible run to run. Real wall-clock seconds are
recorded alongside for reference, never used in the scaling number.

The report also embeds the :func:`~repro.cluster.sim.run_cluster_drill`
digest comparison, so ``benchmarks/BENCH_PR9.json`` carries both PR-9
acceptance facts: near-linear scaling to 8 workers and a kill-a-worker
drill whose scenario digest equals the undisturbed run's. Alongside it
rides the degraded-mode :func:`~repro.cluster.sim.run_reroute_drill`
verdict — the same kill with respawn disabled, recovered by dropping the
node from the ring and re-keying its work to the survivors.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.cluster.router import ClusterRouter
from repro.cluster.sim import (
    ClusterSimConfig,
    ClusterTraffic,
    drive_round,
    run_cluster_drill,
    run_reroute_drill,
)
from repro.cluster.worker import WorkerSpec
from repro.harness.experiments import get_scenario
from repro.serve.server import DONE, REJECTED
from repro.serve.stats import ServeStats
from repro.store.store import ArtifactStore
from repro.utils.clock import ManualClock, use_clock

SCHEMA_VERSION = 1

#: Where the cluster benchmark report lands by default.
DEFAULT_REPORT = Path("benchmarks") / "BENCH_PR9.json"


@dataclass(frozen=True)
class ClusterBenchConfig:
    """Everything one cluster-bench run depends on."""

    dataset: str = "dmv"
    model_type: str = "fcn"
    scale: str = "smoke"
    seed: int = 0
    worker_counts: tuple[int, ...] = (1, 2, 4, 8)
    tenants: int = 64
    vnodes: int = 128
    requests: int = 512
    # Offered load far above any arm's service capacity: the makespan must
    # measure drain rate, not the arrival window.
    qps: float = 65536.0
    service_hz: float = 64.0
    max_batch: int = 16
    max_queue: int = 4096
    cache_capacity: int = 512
    transport: str = "inline"
    store_root: str = "cluster-store"
    drill: bool = True


def _bench_arm(
    config: ClusterBenchConfig,
    store: ArtifactStore,
    initial_digest: str,
    pool,
    workers: int,
) -> dict:
    """Serve the fixed trace with ``workers`` shards; measure the makespan."""
    tenants = [f"tenant-{i:02d}" for i in range(config.tenants)]
    specs = [
        WorkerSpec(
            worker_id=wid,
            dataset=config.dataset,
            model_type=config.model_type,
            scale=config.scale,
            seed=config.seed,
            store_root=str(store.root),
            initial_digest=initial_digest,
            tenants=tuple(tenants),
            cache_capacity=config.cache_capacity,
        )
        for wid in range(workers)
    ]
    stats = ServeStats()
    clock = ManualClock(domain="router")
    wall_start = time.perf_counter()
    with use_clock(clock):
        router = ClusterRouter(
            specs,
            transport=config.transport,
            vnodes=config.vnodes,
            max_queue=config.max_queue,
            max_batch=config.max_batch,
            stats=stats,
            clock=clock,
        )
        router.start()
        # A fresh traffic object per arm replays the *identical* seeded
        # trace: every worker count serves the same requests.
        traffic = ClusterTraffic(
            benign_pool=pool,
            poison_pool=[],
            tenants=tenants,
            qps=config.qps,
            poison_fraction=0.0,
            seed=config.seed,
        )
        try:
            submitted, waves = drive_round(
                router, traffic, clock,
                requests=config.requests,
                service_hz=config.service_hz,
                timeout=None,  # bench measures capacity, not shedding
                heartbeat_every=0,
            )
            session_seconds = clock()
            served = {
                str(wid): int(snapshot.get("served", 0))
                for wid, snapshot in router.worker_stats().items()
            }
        finally:
            router.shutdown()
    wall_seconds = time.perf_counter() - wall_start
    completed = sum(1 for r in submitted if r.status == DONE)
    loads = list(served.values()) or [0]
    mean_load = sum(loads) / len(loads)
    return {
        "workers": workers,
        "requests": len(submitted),
        "completed": completed,
        "rejected": sum(1 for r in submitted if r.status == REJECTED),
        "waves": waves,
        "session_seconds": session_seconds,
        "qps": completed / session_seconds if session_seconds > 0.0 else None,
        "wall_seconds": wall_seconds,
        "per_worker_served": served,
        "balance": (max(loads) / mean_load) if mean_load > 0.0 else None,
        "mean_latency": stats.latency_summary()["mean"],
    }


def run_cluster_bench(config: ClusterBenchConfig | None = None) -> dict:
    """Measure QPS scaling across worker counts; run the kill drill."""
    config = config or ClusterBenchConfig()
    scenario = get_scenario(
        config.dataset, config.model_type, scale=config.scale, seed=config.seed
    )
    scenario.reset()
    store = ArtifactStore(config.store_root)
    from repro.cluster.promotion import seed_checkpoint

    initial_digest = seed_checkpoint(store, scenario.model)
    pool = scenario.train_workload.queries
    arms = [
        _bench_arm(config, store, initial_digest, pool, workers)
        for workers in config.worker_counts
    ]
    base = arms[0]
    peak = arms[-1]
    scaling = (
        peak["qps"] / base["qps"]
        if base["qps"] and peak["qps"] else None
    )
    report = {
        "schema_version": SCHEMA_VERSION,
        "tool": "pace-repro cluster-bench",
        "config": asdict(config),
        "recorded_unix": time.time(),
        "arms": arms,
        "scaling": {
            "base_workers": base["workers"],
            "peak_workers": peak["workers"],
            "base_qps": base["qps"],
            "peak_qps": peak["qps"],
            "speedup": scaling,
            "target_speedup": 5.0,
            "meets_target": bool(scaling is not None and scaling >= 5.0),
        },
    }
    if config.drill:
        drill = run_cluster_drill(ClusterSimConfig(
            dataset=config.dataset,
            model_type=config.model_type,
            scale=config.scale,
            seed=config.seed,
            transport=config.transport,
            store_root=config.store_root,
        ))
        report["drill"] = {
            "workers": drill["config"]["workers"],
            "killed_worker": drill["drill"]["worker"],
            "ordinal": drill["drill"]["ordinal"],
            "fired": drill["drill"]["fired"],
            "reference_digest": drill["reference"]["digest"],
            "drilled_digest": drill["drilled"]["digest"],
            "identical": drill["identical"],
        }
        reroute = run_reroute_drill(ClusterSimConfig(
            dataset=config.dataset,
            model_type=config.model_type,
            scale=config.scale,
            seed=config.seed,
            transport=config.transport,
            store_root=config.store_root,
        ))
        report["reroute_drill"] = {
            "workers": reroute["config"]["workers"],
            "killed_worker": reroute["drill"]["worker"],
            "ordinal": reroute["drill"]["ordinal"],
            "fired": reroute["drill"]["fired"],
            "all_finalized": reroute["drill"]["all_finalized"],
            "workers_after": reroute["drill"]["workers_after"],
            "survivors_ok": reroute["drill"]["survivors_ok"],
            "ok": reroute["drill"]["ok"],
        }
    return report


def format_cluster_bench(report: dict) -> str:
    """Console summary for ``pace-repro cluster-bench``."""
    from repro.metrics import render_table

    config = report["config"]
    rows = []
    for arm in report["arms"]:
        rows.append([
            str(arm["workers"]),
            str(arm["completed"]),
            str(arm["waves"]),
            f"{arm['session_seconds']:.4f}s",
            f"{arm['qps']:.0f}" if arm["qps"] else "-",
            f"{arm['balance']:.2f}" if arm["balance"] else "-",
            f"{arm['wall_seconds']:.2f}s",
        ])
    scaling = report["scaling"]
    lines = [render_table(
        ["workers", "completed", "waves", "sim time", "qps", "balance", "wall"],
        rows,
        title=(
            f"pace-repro cluster-bench · {config['dataset']}/{config['model_type']} · "
            f"{config['requests']} requests x {config['tenants']} tenants · "
            f"seed={config['seed']}"
        ),
    )]
    lines.append(
        f"\nscaling: {scaling['base_qps']:.0f} qps @ {scaling['base_workers']}w -> "
        f"{scaling['peak_qps']:.0f} qps @ {scaling['peak_workers']}w = "
        f"{scaling['speedup']:.2f}x "
        f"({'meets' if scaling['meets_target'] else 'MISSES'} "
        f">={scaling['target_speedup']:.0f}x target)"
    )
    if "drill" in report:
        drill = report["drill"]
        verdict = "IDENTICAL" if drill["identical"] else "DIVERGED"
        lines.append(
            f"drill: killed worker {drill['killed_worker']} at estimate frame "
            f"{drill['ordinal']} (fired={drill['fired']}) — scenario digest {verdict}"
        )
    if "reroute_drill" in report:
        reroute = report["reroute_drill"]
        lines.append(
            f"reroute drill: killed worker {reroute['killed_worker']} with "
            f"respawn off (fired={reroute['fired']}) — "
            f"{reroute['workers_after']} survivor(s), all requests "
            f"finalized={reroute['all_finalized']} — "
            f"{'ok' if reroute['ok'] else 'FAIL'}"
        )
    return "\n".join(lines)
