"""Sharded multi-process serve cluster with replicated promotion.

One router process shards requests across N shard workers through a
consistent-hash ring keyed by ``(tenant, join-template)``; workers are
pure replicas that only change parameters by ``warm_restart``-ing from
checkpoint digests in the shared :class:`~repro.store.ArtifactStore`.
See :mod:`repro.cluster.router` for the failure-recovery story and
:mod:`repro.cluster.sim` for the deterministic drill harness.
"""

from repro.cluster.bench import (
    ClusterBenchConfig,
    format_cluster_bench,
    run_cluster_bench,
)
from repro.cluster.promotion import ClusterPromotion, seed_checkpoint
from repro.cluster.ring import HashRing, ring_position, shard_key
from repro.cluster.router import ClusterError, ClusterRequest, ClusterRouter
from repro.cluster.rpc import (
    EndpointClosed,
    RpcChannel,
    RpcError,
    RpcTimeout,
    decode_frame,
    encode_frame,
)
from repro.cluster.sim import (
    ClusterSimConfig,
    ClusterTraffic,
    format_cluster_report,
    format_drill_report,
    run_cluster_drill,
    run_cluster_sim,
    scenario_digest,
)
from repro.cluster.worker import ShardWorker, WorkerSpec, worker_main

__all__ = [
    "ClusterBenchConfig",
    "ClusterError",
    "ClusterPromotion",
    "ClusterRequest",
    "ClusterRouter",
    "ClusterSimConfig",
    "ClusterTraffic",
    "EndpointClosed",
    "HashRing",
    "RpcChannel",
    "RpcError",
    "RpcTimeout",
    "ShardWorker",
    "WorkerSpec",
    "decode_frame",
    "encode_frame",
    "format_cluster_bench",
    "format_cluster_report",
    "format_drill_report",
    "ring_position",
    "run_cluster_bench",
    "run_cluster_drill",
    "run_cluster_sim",
    "scenario_digest",
    "seed_checkpoint",
    "shard_key",
    "worker_main",
]
