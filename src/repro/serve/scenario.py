"""The ``pace-repro serve-sim`` scenario: live attack replay, guard on/off.

One simulation builds an attack scenario (dataset + trained model), crafts
a poison pool with the configured attack method, then serves the same
seeded traffic trace twice from the same clean parameters:

* **unguarded** — the DBMS retrains on everything the server executed,
  exactly the paper's threat model;
* **guarded** — a :class:`~repro.serve.retrain.PromotionGuard` reviews
  every incremental update against held-out validation Q-error and rolls
  back updates that degrade past its envelope.

Both arms run under a :class:`~repro.utils.clock.ManualClock`, so the
entire report — latency percentiles included — is a deterministic
function of the config; the same seed yields a byte-identical JSON
document.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.ce.deployment import DeployedEstimator
from repro.ce.trainer import evaluate_q_errors
from repro.harness.experiments import (
    AttackScenario,
    craft_poison,
    get_scenario,
    get_surrogate,
)
from repro.serve.cache import EstimateCache
from repro.serve.replay import ReplayConfig, TrafficReplay
from repro.serve.retrain import PromotionGuard, RetrainLoop
from repro.serve.server import EstimatorServer
from repro.serve.stats import ServeStats
from repro.utils.clock import ManualClock, use_clock
from repro.workload.workload import Workload

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ServeSimConfig:
    """Everything one serve-sim run depends on (and nothing else)."""

    dataset: str = "dmv"
    model_type: str = "mscn"
    scale: str = "smoke"
    seed: int = 0
    rounds: int = 3
    requests_per_round: int = 64
    qps: float = 256.0
    service_hz: float = 32.0
    poison_fraction: float = 0.5
    attack_method: str = "pace"
    timeout: float = 0.5
    max_queue: int = 128
    max_batch: int = 16
    guard_factor: float = 1.5
    cache_capacity: int = 512
    #: ``None`` inherits the process-wide compile toggle; ``True``/``False``
    #: force compiled execution on/off for the whole simulation (both arms).
    compile_enabled: bool | None = None


def _run_arm(
    scenario: AttackScenario,
    poison,
    validation: Workload,
    evaluation: Workload,
    config: ServeSimConfig,
    guarded: bool,
) -> dict:
    """Serve one full traffic session from clean parameters; one arm."""
    scenario.reset()
    model = scenario.model
    deployed = DeployedEstimator(
        model, scenario.executor, update_steps=scenario.scale.update_steps
    )
    guard = PromotionGuard(validation, factor=config.guard_factor) if guarded else None
    cache = EstimateCache(capacity=config.cache_capacity)
    stats = ServeStats()
    # retrain_every is irrelevant here: the round loop flushes explicitly,
    # so every round maps to exactly one retrain event.
    retrain = RetrainLoop(
        deployed,
        retrain_every=config.requests_per_round,
        guard=guard,
        on_promote=cache.invalidate,
        stats=stats,
    )
    server = EstimatorServer(
        deployed,
        max_queue=config.max_queue,
        max_batch=config.max_batch,
        cache=cache,
        retrain=retrain,
        stats=stats,
        default_timeout=config.timeout,
    )
    replay = TrafficReplay(
        benign_pool=scenario.train_workload.queries,
        poison_pool=list(poison),
        config=ReplayConfig(
            qps=config.qps,
            poison_fraction=config.poison_fraction if poison else 0.0,
            timeout=config.timeout,
            service_hz=config.service_hz,
            seed=config.seed,
        ),
    )
    with use_clock(ManualClock()) as clock:
        baseline = float(evaluate_q_errors(model, evaluation).mean())
        rounds = []
        for index in range(config.rounds):
            result = replay.drive(server, config.requests_per_round, clock=clock)
            event = retrain.flush()
            mean_qerror = float(evaluate_q_errors(model, evaluation).mean())
            rounds.append({
                "round": index,
                "arrivals": result.arrivals,
                "benign": result.benign,
                "attacker": result.attacker,
                "elapsed": result.elapsed,
                "mean_qerror": mean_qerror,
                "promoted": bool(event.promoted) if event else False,
                "rolled_back": bool(event.rolled_back) if event else False,
                "update_rejected": event.rejected if event else 0,
            })
        session_seconds = clock()
    final = rounds[-1]["mean_qerror"] if rounds else baseline
    arm = {
        "guarded": guarded,
        "baseline_qerror": baseline,
        "final_qerror": final,
        "degradation": final / baseline if baseline > 0.0 else None,
        "qerror_trajectory": [r["mean_qerror"] for r in rounds],
        "rounds": rounds,
        "session_seconds": session_seconds,
        "throughput_qps": stats.throughput(session_seconds),
        "cache_invalidations": cache.invalidations,
        "stats": stats.to_json(),
        "retrain_events": [e.as_dict() for e in retrain.events],
    }
    if guard is not None:
        arm["guard"] = {
            "factor": guard.factor,
            "baseline_qerror": guard.baseline_qerror,
            "admissions": guard.admissions,
            "vetoes": guard.vetoes,
        }
    return arm


def run_serve_sim(config: ServeSimConfig | None = None) -> dict:
    """Run the full guarded-vs-unguarded serving simulation.

    Returns a JSON-ready report with both arms' Q-error and latency
    trajectories. Everything in it is seed-deterministic — serialize with
    ``sort_keys=True`` and identical configs produce identical bytes.
    """
    config = config or ServeSimConfig()
    scenario = get_scenario(
        config.dataset, config.model_type, scale=config.scale, seed=config.seed
    )
    poison = []
    if config.poison_fraction > 0.0 and config.attack_method != "clean":
        # Pre-seat the true-family surrogate so the crafting path never
        # gambles the simulation on smoke-scale type speculation.
        get_surrogate(scenario, model_type=scenario.model_type)
        poison, *_ = craft_poison(
            scenario, config.attack_method, use_detector=False
        )
    validation, evaluation = scenario.test_workload.split(0.5, seed=config.seed + 23)
    from contextlib import nullcontext

    from repro.nn.compile import compiled_execution, is_enabled

    context = (
        nullcontext()
        if config.compile_enabled is None
        else compiled_execution(config.compile_enabled)
    )
    with context:
        compile_on = is_enabled()
        unguarded = _run_arm(
            scenario, poison, validation, evaluation, config, guarded=False
        )
        guarded = _run_arm(
            scenario, poison, validation, evaluation, config, guarded=True
        )
    scenario.reset()
    unguarded_final = unguarded["final_qerror"]
    guarded_final = guarded["final_qerror"]
    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "pace-repro serve-sim",
        "config": asdict(config),
        "poison_pool": len(poison),
        "validation_queries": len(validation),
        "evaluation_queries": len(evaluation),
        "compile": {"enabled": compile_on},
        "arms": {"unguarded": unguarded, "guarded": guarded},
        "guard_effect": {
            "unguarded_final_qerror": unguarded_final,
            "guarded_final_qerror": guarded_final,
            "qerror_ratio": (
                unguarded_final / guarded_final if guarded_final > 0.0 else None
            ),
            "guard_wins": guarded_final <= unguarded_final,
        },
    }


def format_serve_report(report: dict) -> str:
    """Console summary for ``pace-repro serve-sim``."""
    from repro.metrics import render_table

    config = report["config"]
    rows = []
    for arm_name in ("unguarded", "guarded"):
        arm = report["arms"][arm_name]
        stats = arm["stats"]
        rows.append([
            arm_name,
            f"{arm['baseline_qerror']:.3f}",
            f"{arm['final_qerror']:.3f}",
            f"{arm['degradation']:.2f}x" if arm["degradation"] is not None else "-",
            f"{stats['promotions']}/{stats['rollbacks']}",
            f"{stats['completed']}/{stats['shed']}/{stats['rejected']}",
            f"{stats['latency']['p99'] * 1e3:.1f}ms",
        ])
    lines = [render_table(
        ["arm", "clean q-err", "final q-err", "degradation",
         "promote/rollback", "done/shed/rej", "p99"],
        rows,
        title=(
            f"pace-repro serve-sim · {config['dataset']}/{config['model_type']} · "
            f"{config['attack_method']} @ poison={config['poison_fraction']:.0%} · "
            f"seed={config['seed']}"
        ),
    )]
    effect = report["guard_effect"]
    if effect["qerror_ratio"] is not None:
        lines.append(
            f"\nguard effect: final q-error {effect['unguarded_final_qerror']:.3f} "
            f"(unguarded) vs {effect['guarded_final_qerror']:.3f} (guarded) — "
            f"{effect['qerror_ratio']:.2f}x better with the guard"
        )
    return "\n".join(lines)
