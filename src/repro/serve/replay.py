"""Open-loop traffic replay: seeded arrivals mixing benign and attacker.

:class:`TrafficReplay` turns two query pools — benign workload templates
and a crafted poisoning pool — into a single open-loop arrival process:
exponential interarrivals at a target QPS, each arrival drawn from the
attacker pool with probability ``poison_fraction``, everything derived
from one seed. ``drive`` feeds the arrivals into an
:class:`~repro.serve.server.EstimatorServer` while advancing a
:class:`~repro.utils.clock.ManualClock` through arrival instants and
fixed-rate service instants, so the whole session — queueing delays,
deadline sheds, backpressure rejections, retrain scheduling — is a pure
function of (pools, config, seed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.query import Query
from repro.serve.server import EstimatorServer
from repro.utils.clock import ManualClock, get_clock
from repro.utils.errors import ReproError
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class ReplayConfig:
    """Arrival-process knobs for one replay session.

    Attributes:
        qps: mean arrival rate (exponential interarrivals).
        poison_fraction: probability each arrival is drawn from the
            attacker pool instead of the benign pool.
        timeout: per-request deadline in seconds (None = no deadline).
        service_hz: micro-batch service instants per second — together
            with the server's ``max_batch`` this bounds service capacity
            at ``service_hz * max_batch`` requests/second.
        seed: derives every random decision in the replay.
    """

    qps: float = 256.0
    poison_fraction: float = 0.0
    timeout: float | None = None
    service_hz: float = 32.0
    seed: int = 0


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: when, what, and which client sent it."""

    at: float
    query: Query
    client: str


@dataclass
class ReplayRoundResult:
    """What one :meth:`TrafficReplay.drive` call produced."""

    arrivals: int
    benign: int
    attacker: int
    started_at: float
    finished_at: float

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at


class TrafficReplay:
    """Seeded open-loop traffic driver over an estimator server."""

    def __init__(
        self,
        benign_pool: list[Query],
        poison_pool: list[Query],
        config: ReplayConfig | None = None,
    ) -> None:
        if not benign_pool:
            raise ReproError("traffic replay needs a non-empty benign query pool")
        self.config = config or ReplayConfig()
        if self.config.qps <= 0.0 or self.config.service_hz <= 0.0:
            raise ReproError("qps and service_hz must be positive")
        if not 0.0 <= self.config.poison_fraction <= 1.0:
            raise ReproError(
                f"poison_fraction must be in [0, 1], got {self.config.poison_fraction}"
            )
        if self.config.poison_fraction > 0.0 and not poison_pool:
            raise ReproError("poison_fraction > 0 requires a non-empty poison pool")
        self.benign_pool = list(benign_pool)
        self.poison_pool = list(poison_pool)
        self._rng = derive_rng(self.config.seed)

    def arrivals(self, n: int, start: float = 0.0) -> list[Arrival]:
        """The next ``n`` arrivals, starting after ``start``.

        Consumes the replay's RNG stream: successive calls continue the
        same arrival process, so a multi-round scenario sees one
        uninterrupted seeded trace.
        """
        out: list[Arrival] = []
        now = float(start)
        for _ in range(n):
            now += float(self._rng.exponential(1.0 / self.config.qps))
            attacker = (
                self.poison_pool
                and float(self._rng.random()) < self.config.poison_fraction
            )
            pool = self.poison_pool if attacker else self.benign_pool
            query = pool[int(self._rng.integers(len(pool)))]
            out.append(Arrival(at=now, query=query, client="attacker" if attacker else "benign"))
        return out

    def drive(
        self,
        server: EstimatorServer,
        n: int,
        retrain=None,
        clock: ManualClock | None = None,
    ) -> ReplayRoundResult:
        """Replay ``n`` arrivals through ``server``, then drain the queue.

        ``clock`` must be the *installed* ambient clock (the one
        :func:`repro.utils.clock.get_clock` returns), because the server
        stamps requests through it; ``drive`` advances it to every
        arrival instant and to each ``1/service_hz`` service instant,
        calling ``server.step()`` (and ``retrain.poll()``) at each one.
        """
        clock = clock if clock is not None else get_clock()
        if not isinstance(clock, ManualClock):
            raise ReproError("TrafficReplay.drive needs a ManualClock driving the session")
        start = clock()
        period = 1.0 / self.config.service_hz
        next_service = start + period
        benign = attacker = 0
        for arrival in self.arrivals(n, start=start):
            while next_service <= arrival.at:
                clock.set(next_service)
                server.step()
                if retrain is not None:
                    retrain.poll()
                next_service += period
            clock.set(arrival.at)
            server.submit(arrival.query, timeout=self.config.timeout, client=arrival.client)
            if arrival.client == "attacker":
                attacker += 1
            else:
                benign += 1
        while server.queue_depth > 0:
            clock.set(next_service)
            server.step()
            if retrain is not None:
                retrain.poll()
            next_service += period
        return ReplayRoundResult(
            arrivals=n,
            benign=benign,
            attacker=attacker,
            started_at=start,
            finished_at=clock(),
        )
