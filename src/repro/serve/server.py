"""The online estimation server: bounded queue + micro-batched forwards.

:class:`EstimatorServer` wraps a
:class:`~repro.ce.deployment.DeployedEstimator` in a production-shaped
request loop:

* **bounded request queue** — :meth:`EstimatorServer.submit` rejects new
  requests once the queue is full (backpressure, surfaced to the client
  instead of unbounded memory growth);
* **per-request deadlines** — a request whose deadline passed while it
  queued is *shed* at dequeue time, spending no model compute on an
  answer nobody is waiting for;
* **micro-batching** — :meth:`EstimatorServer.step` drains up to
  ``max_batch`` requests and answers all cache misses with a single
  ``encode_many`` + one fused forward pass, instead of one round-trip
  per request.

The loop is deterministic and clock-driven: every timestamp comes from
:func:`repro.utils.clock.get_clock`, so a
:class:`~repro.utils.clock.ManualClock`/`FakeClock` makes entire serving
sessions bit-reproducible. Nothing in this module touches ground truth —
``COUNT(*)`` execution and incremental retraining live in
:mod:`repro.serve.retrain`, off the estimate hot path (enforced by flow
rule R011).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.ce.deployment import DeployedEstimator
from repro.db.query import Query
from repro.perf.registry import PERF
from repro.serve.cache import EstimateCache
from repro.serve.stats import ServeStats
from repro.utils.clock import get_clock

#: Request lifecycle states.
PENDING = "pending"
DONE = "done"
SHED = "shed"          # deadline expired while queued
REJECTED = "rejected"  # bounded queue was full at submit time


@dataclass
class EstimateRequest:
    """One in-flight estimate request and its outcome."""

    query: Query
    submitted_at: float
    deadline: float | None = None
    client: str = "benign"
    status: str = PENDING
    estimate: float | None = None
    completed_at: float | None = None
    from_cache: bool = False

    @property
    def latency(self) -> float | None:
        """Seconds from submission to completion (None while pending)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


class EstimatorServer:
    """Micro-batching front end over a deployed estimator.

    Args:
        deployed: the model-serving facade (only its estimate surface is
            used here).
        max_queue: bounded queue depth; submissions beyond it are rejected.
        max_batch: micro-batch size cap per :meth:`step`.
        cache: optional :class:`EstimateCache`; hits skip the forward pass.
        retrain: optional :class:`~repro.serve.retrain.RetrainLoop`; every
            served request's query is recorded as executed-workload input
            for the *background* retrain path.
        stats: telemetry sink (a fresh :class:`ServeStats` by default).
        default_timeout: deadline in seconds applied to submissions that
            do not pass an explicit ``timeout``.
    """

    def __init__(
        self,
        deployed: DeployedEstimator,
        max_queue: int = 256,
        max_batch: int = 32,
        cache: EstimateCache | None = None,
        retrain=None,
        stats: ServeStats | None = None,
        default_timeout: float | None = None,
    ) -> None:
        if max_queue <= 0:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        self._deployed = deployed
        self._encoder = deployed.inspect_model().encoder
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.cache = cache
        self.retrain = retrain
        self.stats = stats or ServeStats()
        self.default_timeout = default_timeout
        self._queue: deque[EstimateRequest] = deque()

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def submit(
        self,
        query: Query,
        timeout: float | None = None,
        client: str = "benign",
    ) -> EstimateRequest:
        """Enqueue one estimate request; rejects when the queue is full.

        ``timeout`` (seconds, on the ambient clock) sets the request's
        deadline; ``None`` falls back to ``default_timeout``; both ``None``
        means the request never expires.
        """
        now = get_clock()()
        timeout = self.default_timeout if timeout is None else timeout
        request = EstimateRequest(
            query=query,
            submitted_at=now,
            deadline=None if timeout is None else now + timeout,
            client=client,
        )
        self.stats.record_submitted()
        if len(self._queue) >= self.max_queue:
            request.status = REJECTED
            request.completed_at = now
            self.stats.record_rejected()
            return request
        self._queue.append(request)
        self.stats.observe_queue_depth(len(self._queue))
        return request

    # ------------------------------------------------------------------
    # service loop
    # ------------------------------------------------------------------
    def step(self) -> list[EstimateRequest]:
        """Serve one micro-batch; returns every request it finalized.

        Drains up to ``max_batch`` queued requests (shedding expired
        ones), answers cache hits immediately, and resolves all misses
        with a single batched encode + fused forward pass.
        """
        clock = get_clock()
        finalized: list[EstimateRequest] = []
        batch: list[EstimateRequest] = []
        while self._queue and len(batch) < self.max_batch:
            request = self._queue.popleft()
            now = clock()
            if request.deadline is not None and now > request.deadline:
                request.status = SHED
                request.completed_at = now
                self.stats.record_shed()
                finalized.append(request)
                continue
            batch.append(request)
        if not batch:
            return finalized

        misses = batch
        if self.cache is not None:
            misses = []
            hits = 0
            for request in batch:
                cached = self.cache.get(request.query)
                if cached is None:
                    misses.append(request)
                else:
                    request.estimate = cached
                    request.from_cache = True
                    hits += 1
            self.stats.record_cache(hits, len(misses))
        if misses:
            with PERF.span("serve.batch_forward"):
                encodings = self._encoder.encode_many([r.query for r in misses])
                estimates = self._deployed.explain_encoded(encodings)
            for request, estimate in zip(misses, estimates):
                request.estimate = float(estimate)
                if self.cache is not None:
                    self.cache.put(request.query, request.estimate)
        self.stats.record_batch(len(batch))

        for request in batch:
            request.status = DONE
            request.completed_at = clock()
            self.stats.record_completed(request.latency)
            if self.retrain is not None:
                # Executed-workload observation only: labeling and the
                # actual update run later, inside the retrain loop.
                self.retrain.observe(request.query)
            finalized.append(request)
        return finalized

    def run_until_idle(self, max_steps: int = 10_000) -> list[EstimateRequest]:
        """Step until the queue drains; returns all finalized requests."""
        finalized: list[EstimateRequest] = []
        steps = 0
        while self._queue:
            if steps >= max_steps:
                raise RuntimeError(f"queue failed to drain within {max_steps} steps")
            finalized.extend(self.step())
            steps += 1
        return finalized
