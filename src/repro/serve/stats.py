"""Serving-time telemetry: latency histograms, throughput, counters.

One :class:`ServeStats` instance aggregates everything a serve run
produces — per-request latencies (p50/p95/p99 summaries), queue-depth
peaks, cache hit rates, shedding/backpressure counts, and the retrain
loop's promotion/rollback tally. Every recording call also mirrors into
the process-wide :data:`repro.perf.registry.PERF` registry (a no-op
unless profiling is enabled), so ``pace-repro profile``-style tooling
sees serve counters alongside the rest of the system's spans.
"""

from __future__ import annotations

import numpy as np

from repro.nn.compile import compile_stats, is_enabled, stats_delta
from repro.perf.registry import PERF

#: Latency percentiles reported by :meth:`ServeStats.latency_summary`.
LATENCY_PERCENTILES: tuple[float, ...] = (50.0, 95.0, 99.0)

#: Version tag carried by :meth:`ServeStats.to_json` snapshots. Bump it
#: whenever a field is renamed/removed so downstream ingesters (the ops
#: TSDB, serve-sim, cluster-sim) fail loudly instead of misreading.
STATS_SCHEMA_VERSION = 1


class ServeStats:
    """Mutable telemetry for one serving session."""

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.rejected = 0        # backpressure: bounded queue was full
        self.shed = 0            # deadline passed before service
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches = 0
        self.batched_requests = 0
        self.queue_depth_peak = 0
        self.retrain_rounds = 0
        self.promotions = 0
        self.rollbacks = 0
        self.update_rejected = 0  # queries gates screened out of updates
        self._latencies: list[float] = []  # safe: R015 appended only on the serve thread; the retrain thread touches counters only
        # The plan cache is process-global; snapshotting it at construction
        # scopes the reported compile activity to this serving session.
        self._compile_baseline = compile_stats()

    # ------------------------------------------------------------------
    # recording (each mirrors into PERF when profiling is enabled)
    # ------------------------------------------------------------------
    def record_submitted(self) -> None:
        self.submitted += 1
        PERF.incr("serve.submitted")

    def record_rejected(self) -> None:
        self.rejected += 1
        PERF.incr("serve.rejected")

    def record_shed(self) -> None:
        self.shed += 1
        PERF.incr("serve.shed")

    def record_completed(self, latency_seconds: float) -> None:
        self.completed += 1
        self._latencies.append(float(latency_seconds))
        PERF.incr("serve.completed")

    def record_cache(self, hits: int, misses: int) -> None:
        self.cache_hits += hits
        self.cache_misses += misses
        PERF.incr("serve.cache_hits", hits)
        PERF.incr("serve.cache_misses", misses)

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_requests += size
        PERF.incr("serve.batches")

    def observe_queue_depth(self, depth: int) -> None:
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth

    def record_retrain(self, promoted: bool, rolled_back: bool, rejected: int) -> None:
        self.retrain_rounds += 1
        self.update_rejected += rejected
        PERF.incr("serve.retrain_rounds")
        if promoted:
            self.promotions += 1
            PERF.incr("serve.promotions")
        if rolled_back:
            self.rollbacks += 1
            PERF.incr("serve.rollbacks")

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def latencies(self) -> np.ndarray:
        """Per-request latencies (seconds) in completion order."""
        return np.asarray(self._latencies, dtype=np.float64)

    def latency_summary(self) -> dict[str, float]:
        """p50/p95/p99/mean/max of completed-request latency, in seconds."""
        if not self._latencies:
            return {"n": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        lat = self.latencies
        p50, p95, p99 = np.percentile(lat, LATENCY_PERCENTILES)
        return {
            "n": int(lat.size),
            "mean": float(lat.mean()),
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
            "max": float(lat.max()),
        }

    def throughput(self, elapsed_seconds: float) -> float:
        """Completed requests per second over ``elapsed_seconds``."""
        if elapsed_seconds <= 0.0:
            return 0.0
        return self.completed / elapsed_seconds

    def cache_hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        if looked_up == 0:
            return 0.0
        return self.cache_hits / looked_up

    def mean_batch_size(self) -> float:
        if self.batches == 0:
            return 0.0
        return self.batched_requests / self.batches

    def compile_snapshot(self) -> dict:
        """Plan-cache activity since this session started."""
        return {
            "enabled": is_enabled(),
            "stats": stats_delta(compile_stats(), self._compile_baseline),
        }

    def snapshot(self) -> dict:
        """A JSON-ready copy of every counter plus the latency summary."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "shed": self.shed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate(),
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size(),
            "queue_depth_peak": self.queue_depth_peak,
            "retrain_rounds": self.retrain_rounds,
            "promotions": self.promotions,
            "rollbacks": self.rollbacks,
            "update_rejected": self.update_rejected,
            "latency": self.latency_summary(),
            "compile": self.compile_snapshot(),
        }

    def to_json(self) -> dict:
        """The stable, schema-versioned wire form of :meth:`snapshot`.

        This is the one snapshot shape shared by serve-sim, cluster-sim,
        and the ops TSDB ingester
        (:meth:`repro.ops.tsdb.TimeSeriesDB.ingest_stats`): consumers
        check ``schema_version`` instead of duck-typing the dict.
        """
        return {"schema_version": STATS_SCHEMA_VERSION, **self.snapshot()}
