"""Background incremental retraining with validation-gated promotion.

The DBMS's incremental update (Eq. 9) is the mechanism PACE exploits;
serving it safely means never letting an update go live unreviewed.
:class:`RetrainLoop` buffers the executed workload the server observed
and periodically routes it through
:meth:`~repro.ce.deployment.DeployedEstimator.execute`, where the
configured gate stack screens the update stream (e.g. the VAE
:class:`~repro.attack.detector.DetectorGate`) and — when a
:class:`PromotionGuard` is installed — the freshly updated parameters
are treated as a *shadow candidate*: they are promoted only if their
held-out validation Q-error stays inside the guard's envelope, and
rolled back to the previous serving model otherwise.

This module is the *background* path: it may execute ground truth and
retrain. The estimate hot path (:mod:`repro.serve.server`) must not —
flow rule R011 enforces the split.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.ce.base import CardinalityEstimator
from repro.ce.deployment import DeployedEstimator, Gate
from repro.ce.trainer import evaluate_q_errors
from repro.db.query import Query
from repro.serve.stats import ServeStats
from repro.store.store import RunHandle
from repro.utils.errors import StoreError, TrainingError
from repro.workload.workload import Workload


class PromotionGuard(Gate):
    """Veto updates whose held-out validation Q-error degrades too far.

    The guard is calibrated once against the clean serving model: its
    baseline is the model's mean validation Q-error at deployment. After
    every incremental update, :meth:`review_update` re-evaluates the
    candidate on the same validation workload and admits it only while

    ``candidate_mean_qerror <= factor * baseline_mean_qerror``.

    This is a serving-time complement to the update-stream screens in
    :mod:`repro.attack.defense`: even poison that slips past per-query
    detection cannot *stay* promoted without passing validation.
    """

    name = "promotion-guard"

    def __init__(self, validation: Workload, factor: float = 2.0) -> None:
        if len(validation) == 0:
            raise TrainingError("the promotion guard needs a non-empty validation workload")
        if factor <= 0.0:
            raise TrainingError(f"guard factor must be positive, got {factor}")
        self.validation = validation
        self.factor = factor
        self.baseline_qerror: float | None = None
        self.last_candidate_qerror: float | None = None
        self.admissions = 0
        self.vetoes = 0

    def calibrate(self, model: CardinalityEstimator) -> float:
        """Record the clean model's validation Q-error as the baseline."""
        self.baseline_qerror = float(evaluate_q_errors(model, self.validation).mean())
        return self.baseline_qerror

    def review_update(self, model: CardinalityEstimator, workload: Workload) -> bool:
        if self.baseline_qerror is None:
            raise TrainingError("calibrate() the promotion guard before deploying it")
        candidate = float(evaluate_q_errors(model, self.validation).mean())
        self.last_candidate_qerror = candidate
        admitted = candidate <= self.factor * self.baseline_qerror
        if admitted:
            self.admissions += 1
        else:
            self.vetoes += 1
        return admitted


@dataclass
class RetrainEvent:
    """Outcome of one background retrain round."""

    round_index: int
    observed: int
    rejected: int
    rejected_by: dict[str, int]
    promoted: bool
    rolled_back: bool
    update_losses: list[float] = field(default_factory=list)
    candidate_qerror: float | None = None
    baseline_qerror: float | None = None

    def as_dict(self) -> dict:
        return {
            "round": self.round_index,
            "observed": self.observed,
            "rejected": self.rejected,
            "rejected_by": dict(sorted(self.rejected_by.items())),
            "promoted": self.promoted,
            "rolled_back": self.rolled_back,
            "candidate_qerror": self.candidate_qerror,
            "baseline_qerror": self.baseline_qerror,
        }


class RetrainLoop:
    """Buffers executed queries and periodically retrains through gates.

    Args:
        deployed: the serving facade; its gate stack performs both the
            update-stream screening and (via an installed
            :class:`PromotionGuard`) the promote/rollback decision.
        retrain_every: buffered-query threshold at which :meth:`poll`
            triggers a retrain round.
        guard: optional promotion guard; installed onto ``deployed``'s
            gate stack if not already present (calibrating it first if
            needed).
        on_promote: callback run after every *promoted* update — the
            server wires cache invalidation here.
        stats: telemetry sink for retrain/promotion/rollback counters.
        max_buffer: hard cap on buffered queries; oldest observations are
            dropped first (the serving layer must bound memory).
        run: optional artifact-store :class:`~repro.store.store.RunHandle`;
            when set, every *promoted* model is checkpointed into the store
            with a lineage edge to the previously promoted checkpoint, and
            promotion/rollback events land in the run manifest — which is
            what :func:`warm_restart` replays after a crash.
    """

    def __init__(
        self,
        deployed: DeployedEstimator,
        retrain_every: int = 32,
        guard: PromotionGuard | None = None,
        on_promote=None,
        stats: ServeStats | None = None,
        max_buffer: int = 4096,
        run: RunHandle | None = None,
    ) -> None:
        if retrain_every <= 0:
            raise TrainingError(f"retrain_every must be positive, got {retrain_every}")
        self._deployed = deployed
        self.retrain_every = retrain_every
        self.guard = guard
        self.on_promote = on_promote
        self.stats = stats
        self.max_buffer = max_buffer
        self.run = run
        # observe() runs on the serve thread while poll()/flush() belong
        # to the background loop; the lock covers the buffer and the
        # event log, never the retrain itself (see flush()).
        self._lock = threading.Lock()
        self._buffer: list[Query] = []
        self.events: list[RetrainEvent] = []
        # Resume lineage where a previous process left it: new promotions
        # chain off the last checkpoint already recorded in the manifest.
        self._last_promoted_digest: str | None = None
        if run is not None:
            last = run.last_event("promotion")
            if last is not None:
                self._last_promoted_digest = last.get("digest")
        if guard is not None and guard not in deployed.gates:
            if guard.baseline_qerror is None:
                guard.calibrate(deployed.inspect_model())
            deployed.add_gate(guard)

    # ------------------------------------------------------------------
    # observation (hot-path-safe: append only)
    # ------------------------------------------------------------------
    def observe(self, query: Query) -> None:
        """Record one executed query for the next retrain round."""
        with self._lock:
            self._buffer.append(query)
            if len(self._buffer) > self.max_buffer:
                del self._buffer[: len(self._buffer) - self.max_buffer]

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._buffer)

    def due(self) -> bool:
        with self._lock:
            return len(self._buffer) >= self.retrain_every

    # ------------------------------------------------------------------
    # the background retrain step
    # ------------------------------------------------------------------
    def poll(self) -> RetrainEvent | None:
        """Retrain if the buffer threshold was reached (else no-op)."""
        if not self.due():
            return None
        return self.flush()

    def flush(self) -> RetrainEvent | None:
        """Force a retrain round on whatever is buffered now.

        The buffer is swapped out under the lock; the retrain itself
        (ground-truth execution plus K GD steps, unbounded cost) runs
        with the lock released, so the serve thread's ``observe`` never
        stalls behind it.
        """
        with self._lock:
            if not self._buffer:
                return None
            queries = self._buffer
            self._buffer = []
        report = self._deployed.execute(queries)
        with self._lock:
            event = RetrainEvent(
                round_index=len(self.events),
                observed=len(queries),
                rejected=report.rejected,
                rejected_by=dict(report.rejected_by),
                promoted=report.updated,
                rolled_back=report.rolled_back,
                update_losses=list(report.update_losses),
                candidate_qerror=(
                    None if self.guard is None else self.guard.last_candidate_qerror
                ),
                baseline_qerror=(
                    None if self.guard is None else self.guard.baseline_qerror
                ),
            )
            self.events.append(event)
        if self.run is not None and (event.promoted or event.rolled_back):
            self._persist(event)
        if self.stats is not None:
            self.stats.record_retrain(
                promoted=event.promoted,
                rolled_back=event.rolled_back,
                rejected=event.rejected,
            )
        if event.promoted and self.on_promote is not None:
            self.on_promote()
        return event

    # ------------------------------------------------------------------
    # durable promotion lineage
    # ------------------------------------------------------------------
    def _persist(self, event: RetrainEvent) -> None:
        """Checkpoint a promotion (or log a rollback) into the run store."""
        if event.promoted:
            state = self._deployed.inspect_model().full_state_dict()
            artifact = self.run.store.put_checkpoint(state)
            parents = (
                [self._last_promoted_digest] if self._last_promoted_digest else []
            )
            self.run.record_artifact(
                f"promotion-{event.round_index}", artifact, parents=parents
            )
            self.run.record_event(
                "promotion",
                digest=artifact.digest,
                round=event.round_index,
                candidate_qerror=event.candidate_qerror,
                baseline_qerror=event.baseline_qerror,
            )
            self._last_promoted_digest = artifact.digest
        else:
            self.run.record_event(
                "rollback",
                round=event.round_index,
                candidate_qerror=event.candidate_qerror,
                baseline_qerror=event.baseline_qerror,
            )
        self.run.commit()


def warm_restart(deployed: DeployedEstimator, run: RunHandle) -> str | None:
    """Restore the last *promoted* checkpoint recorded in ``run``.

    Returns the restored checkpoint's digest, or ``None`` when the run has
    no promotion events yet (the model is left untouched). The restore is
    bitwise: parameters and the calibrated log cap come back exactly as
    the serving process checkpointed them before it died.
    """
    last = run.last_event("promotion")
    if last is None:
        return None
    digest = last.get("digest")
    if not digest:
        raise StoreError(
            f"promotion event {last.get('index')} in run {run.run_id!r} "
            f"carries no checkpoint digest"
        )
    state = run.store.get_checkpoint(digest)
    deployed.inspect_model().load_full_state_dict(state)
    return digest
