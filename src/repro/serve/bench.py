"""``pace-repro serve-bench``: micro-batched serving vs sequential explain.

Measures real wall-clock throughput of the same request stream answered
two ways — one :meth:`~repro.ce.deployment.DeployedEstimator.explain`
round-trip per query versus the :class:`~repro.serve.server.EstimatorServer`
micro-batcher (cache disabled, so every request pays a forward pass) —
and writes the comparison to ``benchmarks/BENCH_PR4.json`` alongside the
earlier BENCH_* reports. The speedup comes from amortizing per-call
overhead: one ``encode_many`` + one fused forward per batch.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.harness.experiments import get_scenario
from repro.serve.server import EstimatorServer
from repro.serve.stats import ServeStats
from repro.utils.rng import derive_rng

SCHEMA_VERSION = 1

#: Where the serve benchmark report lands by default.
DEFAULT_REPORT = Path("benchmarks") / "BENCH_PR4.json"


def _request_stream(scenario, requests: int, seed: int):
    """A seeded stream of queries drawn from the scenario's train pool."""
    pool = scenario.train_workload.queries
    rng = derive_rng(seed + 5)
    return [pool[int(i)] for i in rng.integers(len(pool), size=requests)]


def run_serve_bench(
    dataset: str = "dmv",
    model_type: str = "mscn",
    scale: str = "smoke",
    seed: int = 0,
    requests: int = 512,
    max_batch: int = 32,
    repeats: int = 3,
    compile_enabled: bool | None = None,
) -> dict:
    """Time sequential vs micro-batched serving of one request stream.

    Both paths answer the identical query sequence against the identical
    clean model; each is run ``repeats`` times and the best wall-clock
    time is kept (standard microbenchmark practice — the minimum is the
    least noisy estimator of the achievable time). ``compile_enabled``
    forces compiled execution on (or off) for both paths; ``None``
    inherits the process-wide toggle — the same knob ``profile`` and
    ``bench`` expose.
    """
    from contextlib import nullcontext

    from repro.nn.compile import compiled_execution, is_enabled

    scenario = get_scenario(dataset, model_type, scale=scale, seed=seed)
    scenario.reset()
    queries = _request_stream(scenario, requests, seed)
    deployed = scenario.deployed

    context = (
        nullcontext() if compile_enabled is None
        else compiled_execution(compile_enabled)
    )
    with context:
        compile_on = is_enabled()
        sequential_best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for query in queries:
                deployed.explain(query)
            sequential_best = min(sequential_best, time.perf_counter() - start)

        batched_best = float("inf")
        batched_stats = None
        for _ in range(repeats):
            stats = ServeStats()
            server = EstimatorServer(
                deployed,
                max_queue=requests,
                max_batch=max_batch,
                cache=None,  # every request must pay a forward pass
                stats=stats,
            )
            start = time.perf_counter()
            for query in queries:
                server.submit(query)
            server.run_until_idle()
            elapsed = time.perf_counter() - start
            if elapsed < batched_best:
                batched_best = elapsed
                batched_stats = stats

    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "pace-repro serve-bench",
        "dataset": dataset,
        "model": model_type,
        "scale": scale,
        "seed": seed,
        "requests": requests,
        "max_batch": max_batch,
        "repeats": repeats,
        "compile": {"enabled": compile_on},
        "recorded_unix": time.time(),
        "sequential": {
            "seconds": sequential_best,
            "qps": requests / sequential_best if sequential_best > 0.0 else None,
        },
        "batched": {
            "seconds": batched_best,
            "qps": requests / batched_best if batched_best > 0.0 else None,
            "mean_batch_size": batched_stats.mean_batch_size(),
            "latency": batched_stats.latency_summary(),
        },
        "speedup": (
            sequential_best / batched_best if batched_best > 0.0 else None
        ),
    }


def format_serve_bench(report: dict) -> str:
    """Console summary for ``pace-repro serve-bench``."""
    seq, bat = report["sequential"], report["batched"]
    lines = [
        f"pace-repro serve-bench · {report['dataset']}/{report['model']} · "
        f"{report['requests']} requests · max_batch={report['max_batch']}",
        f"  sequential: {seq['seconds']:.4f}s ({seq['qps']:.0f} qps)",
        f"  batched:    {bat['seconds']:.4f}s ({bat['qps']:.0f} qps, "
        f"mean batch {bat['mean_batch_size']:.1f}, "
        f"p99 {bat['latency']['p99'] * 1e3:.2f}ms)",
        f"  speedup:    {report['speedup']:.2f}x",
    ]
    return "\n".join(lines)
