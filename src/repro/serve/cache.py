"""LRU estimate cache, invalidated whenever a new model is promoted.

Caching estimates is only sound while the serving model is unchanged: a
promoted retrain candidate changes every answer, so the retrain loop
calls :meth:`EstimateCache.invalidate` on promotion (rolled-back updates
leave the cache valid — the serving parameters never changed).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.db.query import Query


class EstimateCache:
    """Bounded LRU mapping of query identity to a cached estimate."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, float]" = OrderedDict()
        self.invalidations = 0

    def get(self, query: Query) -> float | None:
        """The cached estimate for ``query``, refreshing its recency."""
        key = query.cache_key()
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, query: Query, estimate: float) -> None:
        key = query.cache_key()
        self._entries[key] = float(estimate)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self) -> None:
        """Drop every entry (called when a retrained model is promoted)."""
        self._entries.clear()
        self.invalidations += 1

    def __len__(self) -> int:
        return len(self._entries)
