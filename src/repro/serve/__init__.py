"""Online estimation serving: micro-batching, guarded retraining, replay.

The production-shaped layer above :mod:`repro.ce.deployment`: a
clock-driven estimate server with bounded queueing and micro-batched
forwards (:mod:`~repro.serve.server`), an LRU estimate cache invalidated
on model promotion (:mod:`~repro.serve.cache`), a background retrain loop
with validation-gated promotion (:mod:`~repro.serve.retrain`), a seeded
open-loop traffic replay mixing benign clients with a PACE attacker
(:mod:`~repro.serve.replay`), and the end-to-end guarded-vs-unguarded
simulation behind ``pace-repro serve-sim`` (:mod:`~repro.serve.scenario`).
"""

from repro.serve.cache import EstimateCache
from repro.serve.replay import Arrival, ReplayConfig, ReplayRoundResult, TrafficReplay
from repro.serve.retrain import PromotionGuard, RetrainEvent, RetrainLoop, warm_restart
from repro.serve.scenario import (
    ServeSimConfig,
    format_serve_report,
    run_serve_sim,
)
from repro.serve.server import (
    DONE,
    PENDING,
    REJECTED,
    SHED,
    EstimateRequest,
    EstimatorServer,
)
from repro.serve.stats import ServeStats

__all__ = [
    "Arrival",
    "DONE",
    "EstimateCache",
    "EstimateRequest",
    "EstimatorServer",
    "PENDING",
    "PromotionGuard",
    "REJECTED",
    "ReplayConfig",
    "ReplayRoundResult",
    "RetrainEvent",
    "RetrainLoop",
    "SHED",
    "ServeSimConfig",
    "ServeStats",
    "TrafficReplay",
    "format_serve_report",
    "run_serve_sim",
    "warm_restart",
]
