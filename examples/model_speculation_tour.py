"""Tour of surrogate acquisition: probe, speculate, imitate, verify.

Walks through Section 4 of the paper step by step against each of the six
CE model types deployed as a black box, printing the speculation verdict
and the surrogate's imitation quality.

Run:  python examples/model_speculation_tour.py
"""

from repro.attack import (
    SurrogateConfig,
    output_agreement,
    speculate_model_type,
    train_candidates,
    train_surrogate,
)
from repro.ce import DeployedEstimator, TrainConfig, create_model, train_model
from repro.datasets import load_dataset
from repro.db import Executor
from repro.workload import QueryEncoder, WorkloadGenerator


def main() -> None:
    database = load_dataset("dmv", scale="smoke", seed=0)
    executor = Executor(database)
    encoder = QueryEncoder(database.schema)
    generator = WorkloadGenerator(database, executor, seed=1)
    train_workload = generator.generate(100)

    # The attacker's own labeled workload + candidate zoo (shared by all runs).
    candidates = train_candidates(
        encoder, train_workload, hidden_dim=16,
        train_config=TrainConfig(epochs=15, seed=0), seed=0,
    )
    probes = generator.probe_workloads(queries_per_group=6)

    print(f"{'deployed type':14s} {'speculated':12s} {'top-2 similarities':40s} "
          f"imitation |dlog|")
    for true_type in ("fcn", "fcn_pool", "mscn", "rnn", "lstm", "linear"):
        model = create_model(true_type, encoder, hidden_dim=16, seed=7)
        train_model(model, train_workload, TrainConfig(epochs=20, seed=7))
        black_box = DeployedEstimator(model, executor)

        result = speculate_model_type(black_box, candidates, probes)
        top2 = sorted(result.similarities.items(), key=lambda kv: -kv[1])[:2]
        top2_text = ", ".join(f"{name}={sim:+.2f}" for name, sim in top2)

        surrogate = train_surrogate(
            result.speculated_type, encoder, train_workload, black_box,
            SurrogateConfig(hidden_dim=16, epochs=30, seed=0),
        )
        test_queries = [generator.random_query() for _ in range(30)]
        agreement = output_agreement(
            surrogate, black_box.explain_many(test_queries), test_queries
        )
        hit = "HIT " if result.speculated_type == true_type else "miss"
        print(f"{true_type:14s} {result.speculated_type:12s} {top2_text:40s} "
              f"{agreement:6.3f}  [{hit}]")


if __name__ == "__main__":
    main()
