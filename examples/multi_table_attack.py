"""Attack a multi-table (TPC-H) estimator and measure the E2E plan damage.

This is the paper's Section 7.3 scenario: the poisoned estimator feeds the
query optimizer wrong cardinalities, the optimizer picks bad join orders,
and end-to-end execution slows down. The E2E testbed is the cost-based
planner simulator: plans chosen with *estimates*, latency charged with
*true* cardinalities.

Run:  python examples/multi_table_attack.py
"""

from repro.ce import evaluate_q_errors
from repro.harness import e2e_join_queries, get_scenario, run_attack
from repro.planner import E2ESimulator


def main() -> None:
    scenario = get_scenario("tpch", "fcn", scale="smoke", seed=0)
    simulator = E2ESimulator(scenario.executor)
    join_queries = e2e_join_queries(scenario, count=8)

    # Baseline: the clean estimator's plans.
    scenario.reset()
    clean_q = evaluate_q_errors(scenario.model, scenario.test_workload).mean()
    clean_e2e = simulator.run(join_queries, scenario.model).total_seconds
    optimal = simulator.run_optimal(join_queries).total_seconds
    print(f"clean estimator: mean Q-error {clean_q:9.2f}, "
          f"E2E {clean_e2e:.2f}s (perfect-cardinality bound {optimal:.2f}s)")

    # The attack (crafting + executing poisoning queries).
    outcome = run_attack(scenario, "pace")

    # Re-poison the deployed model to inspect the E2E effect.
    scenario.reset()
    scenario.deployed.execute(outcome.poison_queries)
    poisoned_q = evaluate_q_errors(scenario.model, scenario.test_workload).mean()
    poisoned_e2e = simulator.run(join_queries, scenario.model).total_seconds
    scenario.reset()

    print(f"poisoned estimator: mean Q-error {poisoned_q:9.2f}, "
          f"E2E {poisoned_e2e:.2f}s")
    print(f"Q-error degradation: {outcome.degradation:.1f}x")
    print(f"E2E slowdown: {poisoned_e2e / clean_e2e:.2f}x")
    print(f"poisoning workload divergence from history: {outcome.divergence:.4f}")


if __name__ == "__main__":
    main()
