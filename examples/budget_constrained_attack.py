"""Budget-constrained poisoning (the paper's Section 8 extension).

An attacker who may only execute a handful of queries scores a larger pool
of PACE-generated candidates by *poisoning influence* (post-update test
error if the model were updated on that query alone) and submits only the
top-B. Compares the budgeted attack against a random same-size subset.

Run:  python examples/budget_constrained_attack.py
"""

import numpy as np

from repro.attack import select_most_effective
from repro.ce import evaluate_q_errors
from repro.harness import craft_poison, get_scenario, get_surrogate


def main() -> None:
    scenario = get_scenario("dmv", "fcn", scale="smoke", seed=0)
    surrogate = get_surrogate(scenario)
    budget = 8

    # A mixed candidate pool: PACE queries plus ordinary workload queries
    # (the realistic case — the attacker's pool is not uniformly lethal).
    pace_pool, *_ = craft_poison(scenario, "pace", count=16)
    random_pool, *_ = craft_poison(scenario, "random", count=16)
    pool = pace_pool + random_pool
    cards = scenario.executor.count_many(pool)
    print(f"candidate pool: {len(pool)} queries "
          f"({len(pace_pool)} PACE + {len(random_pool)} random), budget: {budget}")

    # Influence-ranked subset vs a random subset of the same size.
    chosen = select_most_effective(
        surrogate, pool, cards, scenario.test_workload, budget=budget
    )
    rng = np.random.default_rng(0)
    random_subset = [pool[i] for i in rng.choice(len(pool), size=budget, replace=False)]

    def degradation(queries) -> float:
        scenario.reset()
        before = evaluate_q_errors(scenario.model, scenario.test_workload).mean()
        scenario.deployed.execute(queries)
        after = evaluate_q_errors(scenario.model, scenario.test_workload).mean()
        scenario.reset()
        return after / before

    print(f"influence-selected top-{budget}: {degradation(chosen):6.1f}x degradation")
    print(f"random {budget}-subset:          {degradation(random_subset):6.1f}x degradation")
    print(f"full {len(pool)}-query attack:       {degradation(pool):6.1f}x degradation")


if __name__ == "__main__":
    main()
