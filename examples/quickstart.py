"""Quickstart: poison a learned cardinality estimator in ~30 lines.

Builds a synthetic DMV database, trains an FCN cardinality estimator,
deploys it behind the black-box interface, and runs the full PACE attack:
type speculation -> surrogate training -> generator (+ detector) training
-> poisoning-query execution. Prints the before/after Q-error.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.attack import PaceAttack, PaceConfig, GeneratorTrainConfig
from repro.ce import DeployedEstimator, TrainConfig, create_model, evaluate_q_errors, train_model
from repro.datasets import load_dataset
from repro.db import Executor
from repro.workload import QueryEncoder, WorkloadGenerator


def main() -> None:
    # 1. A database and its ground-truth executor.
    database = load_dataset("dmv", scale="smoke", seed=0)
    executor = Executor(database)

    # 2. Train a query-driven CE model the way a DBMS would.
    generator = WorkloadGenerator(database, executor, seed=1)
    train_workload = generator.generate(120)
    test_workload = generator.generate(60)
    encoder = QueryEncoder(database.schema)
    model = create_model("fcn", encoder, hidden_dim=16, seed=0)
    train_model(model, train_workload, TrainConfig(epochs=30, seed=0))

    # 3. Deploy it: from here on, only explain/count/execute are visible.
    black_box = DeployedEstimator(model, executor, update_steps=5)
    before = evaluate_q_errors(model, test_workload)
    print(f"clean model   mean Q-error: {before.mean():8.2f}")

    # 4. The attack. PACE only touches the black box's public surface.
    config = PaceConfig(
        poison_queries=24,              # 20% of the tiny training workload
        attacker_queries=100,
        generator=GeneratorTrainConfig(iterations=16, seed=0),
        seed=0,
    )
    attack = PaceAttack(database, black_box, test_workload, config)
    result = attack.attack()

    # 5. Damage report.
    after = evaluate_q_errors(model, test_workload)
    print(f"speculated model type: {result.speculation.speculated_type}")
    print(f"poisoned model mean Q-error: {after.mean():8.2f}")
    print(f"degradation factor: {after.mean() / before.mean():.1f}x")
    cards = np.array([black_box.count(q) for q in result.poison_queries])
    print(f"poisoning queries executed: {len(result.poison_queries)} "
          f"(all satisfiable: {bool((cards > 0).all())})")


if __name__ == "__main__":
    main()
