"""Defense playbook: use PACE itself to harden a learned DBMS.

Implements the paper's Section 8 "improve the learned database systems"
directions:

1. Generate poisoning queries with PACE and train a classifier on them;
   install the classifier as the DBMS's update filter.
2. Attack every candidate CE model type and recommend the most robust one
   (spoiler, matching the paper: the linear model, whose tiny parameter
   count trades accuracy for robustness).

Run:  python examples/defense_playbook.py
"""

from repro.attack import PoisonClassifier, recommend_robust_model
from repro.ce import evaluate_q_errors
from repro.harness import get_scenario, run_attack
import numpy as np


def classifier_defense() -> None:
    print("=== 1. classifier defense ===")
    scenario = get_scenario("dmv", "fcn", scale="smoke", seed=0)
    # Red team: run an (undisguised) PACE attack to harvest poison samples.
    outcome = run_attack(scenario, "pace", use_detector=False)
    print(f"undefended attack degradation: {outcome.degradation:.1f}x")

    normal = scenario.train_workload.encode(scenario.encoder)
    poison = scenario.encoder.encode_many(outcome.poison_queries)
    repeat = max(len(normal) // max(len(poison), 1), 1)
    classifier = PoisonClassifier(scenario.encoder.dim, seed=0)
    classifier.fit(normal, np.tile(poison, (repeat, 1)), epochs=80, seed=0)
    print(f"classifier balanced accuracy: "
          f"{classifier.accuracy(normal, poison):.2f}")

    # Blue team: install the classifier as the update filter and replay.
    scenario.reset()
    scenario.deployed.anomaly_filter = classifier.classifier_filter(scenario.encoder)
    before = evaluate_q_errors(scenario.model, scenario.test_workload).mean()
    report = scenario.deployed.execute(outcome.poison_queries)
    after = evaluate_q_errors(scenario.model, scenario.test_workload).mean()
    print(f"with filter: {report.rejected}/{len(outcome.poison_queries)} "
          f"queries rejected, degradation {after / before:.1f}x")
    scenario.deployed.anomaly_filter = None
    scenario.reset()


def robustness_advisor() -> None:
    print("\n=== 2. robustness advisor ===")
    degradation = {}
    for model_type in ("fcn", "mscn", "linear"):
        scenario = get_scenario("dmv", model_type, scale="smoke", seed=0)
        outcome = run_attack(scenario, "pace")
        degradation[model_type] = outcome.degradation
        print(f"{model_type:8s} degradation under PACE: {outcome.degradation:6.1f}x")
    report = recommend_robust_model(degradation)
    print(f"recommended (most attack-robust) model type: {report.recommended}")


if __name__ == "__main__":
    classifier_defense()
    robustness_advisor()
