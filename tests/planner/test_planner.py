"""Join-order optimizer, cost model, and E2E latency simulation."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.db import Executor, Query
from repro.planner import (
    E2ESimulator,
    EstimatedCardinalities,
    JoinOrderOptimizer,
    LatencyModel,
    OracleWithNoise,
    ScanNode,
    TrueCardinalities,
    plan_cost,
)
from repro.utils.errors import PlanError


@pytest.fixture(scope="module")
def env():
    db = load_dataset("tpch", scale="smoke", seed=0)
    ex = Executor(db)
    return db, ex, TrueCardinalities(ex)


class TestOptimizer:
    def test_single_table_plan_is_scan(self, env):
        db, _ex, truth = env
        opt = JoinOrderOptimizer(db.schema, truth)
        q = Query.build(db.schema, ["orders"])
        planned = opt.best_plan(q)
        assert isinstance(planned.plan, ScanNode)
        assert planned.believed_cost == 0.0

    def test_plan_covers_all_tables(self, env):
        db, _ex, truth = env
        opt = JoinOrderOptimizer(db.schema, truth)
        q = Query.build(db.schema, ["customer", "orders", "lineitem"])
        planned = opt.best_plan(q)
        assert planned.plan.tables == q.tables
        subsets = planned.plan.join_subsets()
        assert q.tables in subsets
        assert len(subsets) == 2  # two joins for three tables

    def test_optimal_plan_has_minimal_true_cost(self, env):
        """The DP under true cardinalities is at least as good as any
        alternative produced under distorted estimates."""
        db, ex, truth = env
        q = Query.build(
            db.schema,
            ["customer", "orders", "lineitem", "part"],
            {("orders", "o_totalprice"): (0.0, 0.4)},
        )
        best = JoinOrderOptimizer(db.schema, truth).best_plan(q)
        optimal_cost = plan_cost(best.plan, q, truth)
        rng = np.random.default_rng(0)
        for _ in range(4):
            # distort every sub-query cardinality by random factors
            noisy = OracleWithNoise(ex, _random_factors(db, q, ex, rng))
            alt = JoinOrderOptimizer(db.schema, noisy).best_plan(q)
            alt_cost = plan_cost(alt.plan, q, truth)
            assert optimal_cost <= alt_cost + 1e-9

    def test_disconnected_join_rejected(self, env):
        db, _ex, truth = env
        opt = JoinOrderOptimizer(db.schema, truth)
        bogus = Query(tables=frozenset({"region", "lineitem"}))
        with pytest.raises(PlanError):
            opt.best_plan(bogus)

    def test_plan_render_readable(self, env):
        db, _ex, truth = env
        opt = JoinOrderOptimizer(db.schema, truth)
        q = Query.build(db.schema, ["customer", "orders"])
        text = opt.best_plan(q).plan.render()
        assert "Join" in text and "Scan" in text


def _random_factors(db, query, ex, rng):
    factors = {}
    from itertools import combinations

    tables = sorted(query.tables)
    for size in range(1, len(tables) + 1):
        for combo in combinations(tables, size):
            if not db.schema.is_valid_join_set(combo):
                continue
            sub = query.restricted_to(combo)
            factors[sub.cache_key()] = float(np.exp(rng.normal(0, 2.0)))
    return factors


class TestCardinalitySources:
    def test_true_cardinalities_match_executor(self, env):
        db, ex, truth = env
        q = Query.build(db.schema, ["nation"])
        assert truth.cardinality(q) == ex.count(q)

    def test_estimated_source_caches(self, env):
        db, _ex, _truth = env
        from repro.ce import create_model
        from repro.workload import QueryEncoder

        model = create_model("linear", QueryEncoder(db.schema), seed=0)
        source = EstimatedCardinalities(model)
        q = Query.build(db.schema, ["nation"])
        a = source.cardinality(q)
        b = source.cardinality(q)
        assert a == b
        assert len(source._cache) == 1


class TestE2ESimulator:
    def test_bad_estimates_cannot_beat_truth(self, env):
        db, ex, _truth = env
        sim = E2ESimulator(ex)
        queries = [
            Query.build(db.schema, ["customer", "orders", "lineitem"],
                        {("lineitem", "l_quantity"): (0.0, 0.5)}),
            Query.build(db.schema, ["supplier", "lineitem", "orders"]),
        ]
        optimal = sim.run_optimal(queries)
        from repro.ce import create_model
        from repro.workload import QueryEncoder

        untrained = create_model("fcn", QueryEncoder(db.schema), hidden_dim=8, seed=0)
        with_model = sim.run(queries, untrained)
        assert with_model.total_seconds >= optimal.total_seconds - 1e-9

    def test_latency_model_components(self, env):
        db, ex, _truth = env
        sim = E2ESimulator(ex, LatencyModel(per_query_overhead=1.0,
                                            seconds_per_scan_tuple=0.0,
                                            seconds_per_tuple=0.0))
        queries = [Query.build(db.schema, ["nation", "region"])]
        result = sim.run_optimal(queries)
        assert result.total_seconds == pytest.approx(1.0)

    def test_runs_report_per_query(self, env):
        db, ex, _truth = env
        sim = E2ESimulator(ex)
        queries = [Query.build(db.schema, ["nation", "region"])]
        result = sim.run_optimal(queries)
        assert len(result.runs) == 1
        assert result.runs[0].true_cost >= 0
        assert result.total_true_cost == pytest.approx(
            sum(r.true_cost for r in result.runs)
        )
