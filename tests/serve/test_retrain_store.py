"""Durable promotion lineage + warm restart from the last promoted checkpoint."""

import numpy as np
import pytest

from repro.serve import PromotionGuard, RetrainLoop, warm_restart
from repro.store import ArtifactStore
from repro.utils.errors import StoreError


@pytest.fixture()
def run(tmp_path):
    return ArtifactStore(tmp_path / "store").create_run("serve", "serve-run")


def observe_batch(loop, serve_world, count):
    for _ in range(count):
        loop.observe(serve_world.generator.random_query())


class TestPromotionLineage:
    def test_promotion_writes_checkpoint_and_event(self, deployed, serve_world, run):
        loop = RetrainLoop(deployed, retrain_every=4, run=run)
        observe_batch(loop, serve_world, 4)
        event = loop.poll()
        assert event.promoted
        promotion = run.store.open_run("serve-run").last_event("promotion")
        assert promotion is not None
        state = run.store.get_checkpoint(promotion["digest"])
        model = deployed.inspect_model()
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(state[name], param.data)
        assert float(state["__meta__.log_cap"]) == pytest.approx(model.log_cap)

    def test_successive_promotions_chain_lineage(self, deployed, serve_world, run):
        loop = RetrainLoop(deployed, retrain_every=4, run=run)
        observe_batch(loop, serve_world, 4)
        loop.flush()
        observe_batch(loop, serve_world, 4)
        loop.flush()
        manifest = run.store.open_run("serve-run").manifest
        promotions = [e for e in manifest["events"] if e["kind"] == "promotion"]
        assert len(promotions) == 2
        second = manifest["artifacts"]["promotion-1"]
        assert second["parents"] == [promotions[0]["digest"]]

    def test_rollback_records_event_without_checkpoint(
        self, deployed, serve_world, run
    ):
        validation = serve_world.generator.generate(16)
        guard = PromotionGuard(validation, factor=1e-9)  # vetoes everything
        loop = RetrainLoop(deployed, retrain_every=4, guard=guard, run=run)
        observe_batch(loop, serve_world, 4)
        event = loop.flush()
        assert event.rolled_back and not event.promoted
        manifest = run.store.open_run("serve-run").manifest
        rollback = manifest["events"][-1]
        assert rollback["kind"] == "rollback"
        assert "digest" not in rollback
        assert manifest["artifacts"] == {}

    def test_new_loop_resumes_lineage_from_manifest(self, deployed, serve_world, run):
        loop = RetrainLoop(deployed, retrain_every=4, run=run)
        observe_batch(loop, serve_world, 4)
        loop.flush()
        first_digest = run.last_event("promotion")["digest"]
        # A restarted process opens the same run: its first promotion must
        # chain off the checkpoint the dead process left behind.
        reopened = run.store.open_run("serve-run")
        successor = RetrainLoop(deployed, retrain_every=4, run=reopened)
        observe_batch(successor, serve_world, 4)
        successor.flush()
        manifest = run.store.open_run("serve-run").manifest
        latest = manifest["artifacts"][
            f"promotion-{successor.events[-1].round_index}"
        ]
        assert latest["parents"] == [first_digest]


class TestWarmRestart:
    def test_restores_last_promoted_checkpoint_bitwise(
        self, deployed, serve_world, run
    ):
        loop = RetrainLoop(deployed, retrain_every=4, run=run)
        observe_batch(loop, serve_world, 4)
        loop.flush()
        model = deployed.inspect_model()
        promoted = {n: p.data.copy() for n, p in model.named_parameters()}
        promoted_cap = model.log_cap
        # The process "dies" after more (uncommitted) drift.
        observe_batch(loop, serve_world, 4)
        deployed.execute([serve_world.generator.random_query() for _ in range(4)])
        reopened = run.store.open_run("serve-run")
        digest = warm_restart(deployed, reopened)
        assert digest == reopened.last_event("promotion")["digest"]
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, promoted[name])
        assert model.log_cap == pytest.approx(promoted_cap)

    def test_no_promotions_is_a_noop(self, deployed, run):
        model = deployed.inspect_model()
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        assert warm_restart(deployed, run) is None
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])

    def test_digestless_promotion_event_raises(self, deployed, run):
        run.record_event("promotion", round=0)
        run.commit()
        with pytest.raises(StoreError, match="no checkpoint digest"):
            warm_restart(deployed, run)
