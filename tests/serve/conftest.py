"""Shared fixtures for serve tests: a small trained model on DMV."""

from types import SimpleNamespace

import pytest

from repro.ce import DeployedEstimator, TrainConfig, create_model, train_model
from repro.datasets import load_dataset
from repro.db import Executor
from repro.workload import QueryEncoder, WorkloadGenerator


@pytest.fixture(scope="session")
def serve_world():
    """One trained smoke-scale model shared by every serve test."""
    db = load_dataset("dmv", scale="smoke", seed=0)
    executor = Executor(db)
    generator = WorkloadGenerator(db, executor, seed=1)
    train = generator.generate(60)
    encoder = QueryEncoder(db.schema)
    model = create_model("fcn", encoder, hidden_dim=12, seed=0)
    train_model(model, train, TrainConfig(epochs=15, seed=0))
    return SimpleNamespace(
        db=db,
        executor=executor,
        generator=generator,
        train=train,
        encoder=encoder,
        model=model,
        clean_state=model.state_dict(),
    )


@pytest.fixture()
def deployed(serve_world):
    """A fresh deployment facade over clean parameters, every test."""
    serve_world.model.load_state_dict(serve_world.clean_state)
    return DeployedEstimator(serve_world.model, serve_world.executor, update_steps=3)
