"""Guarded promotion: calibration, veto/rollback, retrain-loop accounting."""

import numpy as np
import pytest

from repro.serve import PromotionGuard, RetrainLoop, ServeStats
from repro.utils.errors import TrainingError


@pytest.fixture(scope="session")
def validation(serve_world):
    return serve_world.generator.generate(20)


def params_equal(a, b):
    return all(np.array_equal(a[k], b[k]) for k in a)


class TestPromotionGuard:
    def test_requires_calibration_before_review(self, serve_world, validation):
        guard = PromotionGuard(validation)
        with pytest.raises(TrainingError):
            guard.review_update(serve_world.model, validation)

    def test_validates_inputs(self, serve_world, validation):
        with pytest.raises(TrainingError):
            PromotionGuard(validation[0:0])
        with pytest.raises(TrainingError):
            PromotionGuard(validation, factor=0.0)

    def test_generous_factor_admits_and_tight_factor_vetoes(
        self, deployed, serve_world, validation
    ):
        generous = PromotionGuard(validation, factor=1e6)
        generous.calibrate(serve_world.model)
        assert generous.baseline_qerror > 0
        assert generous.review_update(serve_world.model, validation)
        assert (generous.admissions, generous.vetoes) == (1, 0)

        tight = PromotionGuard(validation, factor=1e-9)
        tight.calibrate(serve_world.model)
        assert not tight.review_update(serve_world.model, validation)
        assert (tight.admissions, tight.vetoes) == (0, 1)
        assert tight.last_candidate_qerror == pytest.approx(tight.baseline_qerror)


class TestRetrainLoop:
    def test_polls_only_once_buffer_reaches_threshold(self, deployed, serve_world):
        loop = RetrainLoop(deployed, retrain_every=4)
        queries = [serve_world.generator.random_query() for _ in range(4)]
        for q in queries[:3]:
            loop.observe(q)
            assert loop.poll() is None
        loop.observe(queries[3])
        assert loop.due()
        event = loop.poll()
        assert event is not None
        assert event.round_index == 0
        assert event.observed == 4
        assert loop.pending == 0

    def test_unguarded_update_promotes(self, deployed, serve_world):
        before = deployed.snapshot()
        loop = RetrainLoop(deployed, retrain_every=8)
        for _ in range(8):
            loop.observe(serve_world.generator.random_query())
        event = loop.poll()
        assert event.promoted and not event.rolled_back
        assert not params_equal(before, deployed.snapshot())

    def test_vetoed_update_rolls_back_bitwise(self, deployed, serve_world, validation):
        guard = PromotionGuard(validation, factor=1e-9)
        promoted_flags = []
        loop = RetrainLoop(
            deployed,
            retrain_every=4,
            guard=guard,
            on_promote=lambda: promoted_flags.append(True),
        )
        before = deployed.snapshot()
        for _ in range(4):
            loop.observe(serve_world.generator.random_query())
        event = loop.poll()
        assert event.rolled_back and not event.promoted
        assert guard.vetoes == 1
        assert promoted_flags == []
        assert params_equal(before, deployed.snapshot())
        assert event.candidate_qerror is not None
        assert event.baseline_qerror == guard.baseline_qerror

    def test_promotion_fires_on_promote_hook(self, deployed, serve_world, validation):
        calls = []
        guard = PromotionGuard(validation, factor=1e6)
        loop = RetrainLoop(
            deployed, retrain_every=4, guard=guard, on_promote=lambda: calls.append(1)
        )
        for _ in range(4):
            loop.observe(serve_world.generator.random_query())
        event = loop.poll()
        assert event.promoted
        assert calls == [1]

    def test_retrain_round_is_deterministic(self, deployed, serve_world, validation):
        queries = [serve_world.generator.random_query() for _ in range(6)]
        snapshot = deployed.snapshot()
        results = []
        for _ in range(2):
            deployed.restore(snapshot)
            guard = PromotionGuard(validation, factor=1e6)
            loop = RetrainLoop(deployed, retrain_every=6, guard=guard)
            for q in queries:
                loop.observe(q)
            event = loop.poll()
            results.append((event.candidate_qerror, deployed.snapshot()))
        (q1, p1), (q2, p2) = results
        assert q1 == q2
        assert params_equal(p1, p2)

    def test_buffer_is_bounded_dropping_oldest(self, deployed, serve_world):
        loop = RetrainLoop(deployed, retrain_every=100, max_buffer=5)
        for _ in range(8):
            loop.observe(serve_world.generator.random_query())
        assert loop.pending == 5

    def test_stats_track_rounds_and_rollbacks(self, deployed, serve_world, validation):
        stats = ServeStats()
        guard = PromotionGuard(validation, factor=1e-9)
        loop = RetrainLoop(deployed, retrain_every=4, guard=guard, stats=stats)
        for _ in range(4):
            loop.observe(serve_world.generator.random_query())
        loop.poll()
        assert stats.retrain_rounds == 1
        assert stats.rollbacks == 1
        assert stats.promotions == 0

    def test_retrain_every_must_be_positive(self, deployed):
        with pytest.raises(TrainingError):
            RetrainLoop(deployed, retrain_every=0)

    def test_event_as_dict_is_json_ready(self, deployed, serve_world):
        loop = RetrainLoop(deployed, retrain_every=4)
        for _ in range(4):
            loop.observe(serve_world.generator.random_query())
        payload = loop.poll().as_dict()
        assert payload["round"] == 0
        assert payload["observed"] == 4
        assert isinstance(payload["rejected_by"], dict)
