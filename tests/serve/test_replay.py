"""Seeded traffic replay: arrival determinism, client mix, clock discipline."""

import pytest

from repro.serve import EstimatorServer, ReplayConfig, TrafficReplay
from repro.utils.clock import FakeClock, ManualClock, use_clock
from repro.utils.errors import ReproError


@pytest.fixture()
def pools(serve_world):
    benign = serve_world.train.queries
    poison = benign[:5]  # any distinct pool works for driver mechanics
    return benign, poison


class TestArrivals:
    def test_same_seed_gives_identical_trace(self, pools):
        benign, poison = pools
        config = ReplayConfig(qps=100.0, poison_fraction=0.3, seed=7)
        first = TrafficReplay(benign, poison, config).arrivals(50)
        second = TrafficReplay(benign, poison, config).arrivals(50)
        assert [(a.at, a.client) for a in first] == [(a.at, a.client) for a in second]
        assert [a.query.cache_key() for a in first] == [
            a.query.cache_key() for a in second
        ]

    def test_times_strictly_increase_at_roughly_target_qps(self, pools):
        benign, poison = pools
        arrivals = TrafficReplay(
            benign, poison, ReplayConfig(qps=200.0, seed=3)
        ).arrivals(400)
        times = [a.at for a in arrivals]
        assert all(b > a for a, b in zip(times, times[1:]))
        rate = len(times) / times[-1]
        assert 140.0 < rate < 280.0  # exponential interarrivals around 200 qps

    def test_poison_fraction_controls_client_mix(self, pools):
        benign, poison = pools
        all_benign = TrafficReplay(
            benign, poison, ReplayConfig(poison_fraction=0.0, seed=1)
        ).arrivals(40)
        assert all(a.client == "benign" for a in all_benign)
        all_attack = TrafficReplay(
            benign, poison, ReplayConfig(poison_fraction=1.0, seed=1)
        ).arrivals(40)
        assert all(a.client == "attacker" for a in all_attack)

    def test_successive_calls_continue_the_stream(self, pools):
        benign, poison = pools
        config = ReplayConfig(seed=9)
        whole = TrafficReplay(benign, poison, config).arrivals(20)
        split = TrafficReplay(benign, poison, config)
        head = split.arrivals(10)
        tail = split.arrivals(10, start=head[-1].at)
        assert [a.at for a in head + tail] == [a.at for a in whole]


class TestValidation:
    def test_rejects_bad_configs(self, pools):
        benign, poison = pools
        with pytest.raises(ReproError):
            TrafficReplay([], poison)
        with pytest.raises(ReproError):
            TrafficReplay(benign, [], ReplayConfig(poison_fraction=0.5))
        with pytest.raises(ReproError):
            TrafficReplay(benign, poison, ReplayConfig(poison_fraction=1.5))
        with pytest.raises(ReproError):
            TrafficReplay(benign, poison, ReplayConfig(qps=0.0))
        with pytest.raises(ReproError):
            TrafficReplay(benign, poison, ReplayConfig(service_hz=-1.0))


class TestDrive:
    def test_requires_a_manual_clock(self, deployed, pools):
        benign, poison = pools
        replay = TrafficReplay(benign, poison)
        with use_clock(FakeClock()):
            server = EstimatorServer(deployed)
            with pytest.raises(ReproError):
                replay.drive(server, 4)

    def test_drains_queue_and_accounts_every_arrival(self, deployed, pools):
        benign, poison = pools
        replay = TrafficReplay(
            benign, poison, ReplayConfig(qps=64.0, service_hz=16.0, seed=2)
        )
        with use_clock(ManualClock()) as clock:
            server = EstimatorServer(deployed, max_batch=8)
            result = replay.drive(server, 40, clock=clock)
        assert result.arrivals == 40
        assert result.benign == 40  # poison_fraction defaults to 0
        assert server.queue_depth == 0
        assert server.stats.completed == 40
        assert result.elapsed > 0

    def test_overload_with_deadlines_sheds_requests(self, deployed, pools):
        benign, poison = pools
        # arrivals far outpace service capacity and deadlines are tight:
        # the queue backs up and late requests must be shed, not served.
        replay = TrafficReplay(
            benign,
            poison,
            ReplayConfig(qps=2000.0, service_hz=4.0, timeout=0.3, seed=5),
        )
        with use_clock(ManualClock()) as clock:
            server = EstimatorServer(deployed, max_queue=16, max_batch=4)
            replay.drive(server, 60, clock=clock)
        stats = server.stats
        assert stats.shed > 0
        assert stats.rejected > 0  # bounded queue pushed back too
        assert stats.completed + stats.shed + stats.rejected == 60
