"""serve-sim end to end: determinism, report shape, the guard's effect."""

import json

import pytest

from repro.serve import ServeSimConfig, format_serve_report, run_serve_sim

#: dmv/fcn shares the process-wide scenario cache with the attack tests.
FAST = ServeSimConfig(
    dataset="dmv",
    model_type="fcn",
    rounds=2,
    requests_per_round=32,
    attack_method="random",
)


@pytest.fixture(scope="session")
def fast_report():
    return run_serve_sim(FAST)


class TestReportShape:
    def test_arms_and_trajectories(self, fast_report):
        assert fast_report["schema_version"] == 1
        assert set(fast_report["arms"]) == {"unguarded", "guarded"}
        for arm in fast_report["arms"].values():
            assert len(arm["qerror_trajectory"]) == FAST.rounds
            assert len(arm["rounds"]) == FAST.rounds
            assert arm["baseline_qerror"] > 0
            assert arm["stats"]["completed"] > 0
        assert fast_report["arms"]["guarded"]["guard"]["factor"] == FAST.guard_factor
        assert "guard" not in fast_report["arms"]["unguarded"]

    def test_both_arms_see_identical_traffic(self, fast_report):
        unguarded = fast_report["arms"]["unguarded"]["rounds"]
        guarded = fast_report["arms"]["guarded"]["rounds"]
        for a, b in zip(unguarded, guarded):
            assert (a["benign"], a["attacker"]) == (b["benign"], b["attacker"])

    def test_format_mentions_both_arms(self, fast_report):
        text = format_serve_report(fast_report)
        assert "unguarded" in text and "guarded" in text
        assert "serve-sim" in text


class TestDeterminism:
    def test_same_config_yields_byte_identical_json(self, fast_report):
        again = run_serve_sim(FAST)
        assert json.dumps(again, sort_keys=True) == json.dumps(
            fast_report, sort_keys=True
        )

    def test_different_seed_changes_the_traffic(self, fast_report):
        other = run_serve_sim(
            ServeSimConfig(**{**FAST.__dict__, "seed": 1})
        )
        assert json.dumps(other, sort_keys=True) != json.dumps(
            fast_report, sort_keys=True
        )


class TestGuardEffect:
    def test_guard_reduces_post_attack_degradation_under_pace(self):
        report = run_serve_sim(
            ServeSimConfig(
                dataset="dmv",
                model_type="fcn",
                rounds=2,
                requests_per_round=48,
                attack_method="pace",
            )
        )
        effect = report["guard_effect"]
        assert effect["guard_wins"]
        assert effect["unguarded_final_qerror"] > effect["guarded_final_qerror"]
        # the guard actually intervened: at least one update was vetoed
        assert report["arms"]["guarded"]["stats"]["rollbacks"] > 0
        assert report["arms"]["unguarded"]["stats"]["rollbacks"] == 0
