"""ServeStats.to_json: the schema-versioned snapshot every ingester shares."""

import json

from repro.ops.tsdb import STATS_METRICS, TimeSeriesDB
from repro.serve.stats import STATS_SCHEMA_VERSION, ServeStats


class TestToJson:
    def test_carries_the_schema_version_over_the_full_snapshot(self):
        stats = ServeStats()
        payload = stats.to_json()
        assert payload["schema_version"] == STATS_SCHEMA_VERSION == 1
        # Everything snapshot() reports rides along unchanged.
        for key, value in stats.snapshot().items():
            assert payload[key] == value

    def test_is_json_serializable(self):
        stats = ServeStats()
        stats.record_submitted()
        stats.record_completed(0.002)
        stats.record_cache(1, 0)
        stats.record_batch(4)
        stats.record_retrain(promoted=True, rolled_back=False, rejected=1)
        json.dumps(stats.to_json(), sort_keys=True)

    def test_round_trips_through_the_tsdb_ingester(self):
        stats = ServeStats()
        for _ in range(4):
            stats.record_submitted()
        for _ in range(3):
            stats.record_completed(0.001)
        tsdb = TimeSeriesDB()
        values = tsdb.ingest_stats(stats.to_json(), at=0.0)
        assert set(values) == set(STATS_METRICS)
        assert values["serve.completed"] == 3.0
        assert tsdb.latest("serve.p99_latency") == stats.latency_summary()["p99"]
