"""EstimatorServer: micro-batching, backpressure, shedding, caching."""

import numpy as np
import pytest

from repro.serve import (
    DONE,
    REJECTED,
    SHED,
    EstimateCache,
    EstimatorServer,
    ServeStats,
)
from repro.utils.clock import ManualClock, use_clock


class TestMicroBatching:
    def test_batched_estimates_match_sequential_within_1e9(self, deployed, serve_world):
        queries = [serve_world.generator.random_query() for _ in range(20)]
        with use_clock(ManualClock()):
            server = EstimatorServer(deployed, max_batch=8)
            requests = [server.submit(q) for q in queries]
            server.run_until_idle()
        sequential = [deployed.explain(q) for q in queries]
        assert all(r.status == DONE for r in requests)
        np.testing.assert_allclose(
            [r.estimate for r in requests], sequential, rtol=0.0, atol=1e-9
        )

    def test_step_serves_at_most_max_batch(self, deployed, serve_world):
        queries = [serve_world.generator.random_query() for _ in range(10)]
        with use_clock(ManualClock()):
            server = EstimatorServer(deployed, max_batch=4)
            for q in queries:
                server.submit(q)
            first = server.step()
            assert len(first) == 4
            assert server.queue_depth == 6
            server.run_until_idle()
        assert server.stats.batches == 3
        assert server.stats.completed == 10

    def test_run_until_idle_bounds_steps(self, deployed, serve_world):
        with use_clock(ManualClock()):
            server = EstimatorServer(deployed, max_batch=1)
            for _ in range(3):
                server.submit(serve_world.generator.random_query())
            with pytest.raises(RuntimeError):
                server.run_until_idle(max_steps=1)

    def test_constructor_validates_limits(self, deployed):
        with pytest.raises(ValueError):
            EstimatorServer(deployed, max_queue=0)
        with pytest.raises(ValueError):
            EstimatorServer(deployed, max_batch=0)


class TestBackpressure:
    def test_submissions_beyond_queue_bound_are_rejected(self, deployed, serve_world):
        queries = [serve_world.generator.random_query() for _ in range(6)]
        with use_clock(ManualClock()):
            server = EstimatorServer(deployed, max_queue=4)
            requests = [server.submit(q) for q in queries]
            statuses = [r.status for r in requests]
            assert statuses.count(REJECTED) == 2
            assert server.queue_depth == 4
            assert server.stats.rejected == 2
            assert server.stats.queue_depth_peak == 4
            served = server.run_until_idle()
        assert len(served) == 4
        assert all(r.estimate is None for r in requests if r.status == REJECTED)


class TestShedding:
    def test_expired_deadline_is_shed_not_served(self, deployed, serve_world):
        q1, q2 = (serve_world.generator.random_query() for _ in range(2))
        with use_clock(ManualClock()) as clock:
            server = EstimatorServer(deployed)
            patient = server.submit(q1, timeout=5.0)
            hurried = server.submit(q2, timeout=0.5)
            clock.advance(1.0)
            server.run_until_idle()
        assert patient.status == DONE
        assert hurried.status == SHED
        assert hurried.estimate is None
        assert server.stats.shed == 1

    def test_default_timeout_applies_when_submit_omits_one(self, deployed, serve_world):
        with use_clock(ManualClock()) as clock:
            server = EstimatorServer(deployed, default_timeout=0.25)
            request = server.submit(serve_world.generator.random_query())
            assert request.deadline == pytest.approx(0.25)
            clock.advance(1.0)
            server.run_until_idle()
        assert request.status == SHED

    def test_latency_is_exact_under_manual_clock(self, deployed, serve_world):
        with use_clock(ManualClock()) as clock:
            server = EstimatorServer(deployed)
            request = server.submit(serve_world.generator.random_query())
            clock.advance(2.0)
            server.run_until_idle()
        assert request.latency == pytest.approx(2.0)
        summary = server.stats.latency_summary()
        assert summary["n"] == 1
        assert summary["p50"] == pytest.approx(2.0)
        assert summary["p99"] == pytest.approx(2.0)


class TestCache:
    def test_resubmission_hits_cache_with_identical_estimate(self, deployed, serve_world):
        query = serve_world.generator.random_query()
        with use_clock(ManualClock()):
            server = EstimatorServer(deployed, cache=EstimateCache(capacity=8))
            first = server.submit(query)
            server.run_until_idle()
            second = server.submit(query)
            server.run_until_idle()
        assert not first.from_cache
        assert second.from_cache
        assert second.estimate == first.estimate
        assert server.stats.cache_hits == 1
        assert server.stats.cache_misses == 1
        assert server.stats.cache_hit_rate() == pytest.approx(0.5)

    def test_invalidation_clears_entries(self, deployed, serve_world):
        query = serve_world.generator.random_query()
        cache = EstimateCache(capacity=8)
        with use_clock(ManualClock()):
            server = EstimatorServer(deployed, cache=cache)
            server.submit(query)
            server.run_until_idle()
            assert len(cache) == 1
            cache.invalidate()
            assert len(cache) == 0
            assert cache.invalidations == 1
            again = server.submit(query)
            server.run_until_idle()
        assert not again.from_cache

    def test_lru_eviction_beyond_capacity(self, serve_world):
        cache = EstimateCache(capacity=2)
        q1, q2, q3 = (serve_world.generator.random_query() for _ in range(3))
        cache.put(q1, 1.0)
        cache.put(q2, 2.0)
        assert cache.get(q1) == 1.0  # refreshes q1; q2 becomes the oldest
        cache.put(q3, 3.0)
        assert len(cache) == 2
        assert cache.get(q2) is None
        assert cache.get(q1) == 1.0 and cache.get(q3) == 3.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EstimateCache(capacity=0)


class TestStats:
    def test_snapshot_is_json_ready_and_consistent(self, deployed, serve_world):
        with use_clock(ManualClock()):
            server = EstimatorServer(deployed, stats=ServeStats())
            for _ in range(5):
                server.submit(serve_world.generator.random_query())
            server.run_until_idle()
        snap = server.stats.snapshot()
        assert snap["submitted"] == 5
        assert snap["completed"] == 5
        assert snap["mean_batch_size"] == pytest.approx(5.0)
        assert set(snap["latency"]) == {"n", "mean", "p50", "p95", "p99", "max"}
        assert server.stats.throughput(10.0) == pytest.approx(0.5)
        assert server.stats.throughput(0.0) == 0.0
