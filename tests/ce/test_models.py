"""CE model architectures: contracts shared by all six types."""

import numpy as np
import pytest

from repro.ce import MODEL_TYPES, create_model, register_model
from repro.datasets import load_dataset
from repro.nn import Tensor
from repro.utils.errors import ReproError, TrainingError
from repro.workload import QueryEncoder, WorkloadGenerator


@pytest.fixture(scope="module")
def env():
    db = load_dataset("tpch", scale="smoke", seed=0)
    enc = QueryEncoder(db.schema)
    gen = WorkloadGenerator(db, seed=0)
    queries = [gen.random_query(max_tables=3) for _ in range(8)]
    return db, enc, queries


class TestAllModelTypes:
    @pytest.mark.parametrize("model_type", MODEL_TYPES)
    def test_forward_shape_and_range(self, env, model_type):
        _db, enc, queries = env
        model = create_model(model_type, enc, hidden_dim=8, seed=0)
        x = Tensor(enc.encode_many(queries))
        out = model(x)
        assert out.shape == (len(queries),)
        assert np.all((out.data > 0) & (out.data < 1))

    @pytest.mark.parametrize("model_type", MODEL_TYPES)
    def test_estimates_positive(self, env, model_type):
        _db, enc, queries = env
        model = create_model(model_type, enc, hidden_dim=8, seed=0)
        estimates = model.estimate(queries)
        assert np.all(estimates > 0)

    @pytest.mark.parametrize("model_type", MODEL_TYPES)
    def test_gradients_reach_all_parameters(self, env, model_type):
        _db, enc, queries = env
        model = create_model(model_type, enc, hidden_dim=8, seed=0)
        x = Tensor(enc.encode_many(queries))
        model(x).sum().backward()
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)
        total = sum(float(np.abs(g.data).sum()) for g in grads)
        assert total > 0

    @pytest.mark.parametrize("model_type", MODEL_TYPES)
    def test_gradient_flows_to_input(self, env, model_type):
        """The attack needs d(output)/d(query encoding) != 0."""
        _db, enc, queries = env
        model = create_model(model_type, enc, hidden_dim=8, seed=0)
        x = Tensor(enc.encode_many(queries), requires_grad=True)
        model(x).sum().backward()
        assert np.abs(x.grad.data).sum() > 0

    @pytest.mark.parametrize("model_type", MODEL_TYPES)
    def test_deterministic_construction(self, env, model_type):
        _db, enc, _queries = env
        a = create_model(model_type, enc, hidden_dim=8, seed=3)
        b = create_model(model_type, enc, hidden_dim=8, seed=3)
        np.testing.assert_array_equal(a.flat_parameters(), b.flat_parameters())

    def test_parameter_count_ordering(self, env):
        """Linear is by far the smallest model (the paper's robustness note)."""
        _db, enc, _q = env
        linear = create_model("linear", enc, hidden_dim=32, seed=0)
        fcn = create_model("fcn", enc, hidden_dim=32, seed=0)
        assert linear.num_parameters() < fcn.num_parameters() / 5


class TestNormalization:
    def test_calibrate_and_roundtrip(self, env):
        _db, enc, _q = env
        model = create_model("fcn", enc, hidden_dim=8, seed=0)
        cards = np.array([2.0, 50.0, 4000.0])
        model.calibrate_normalization(cards)
        normalized = model.normalize_log(cards)
        assert np.all((normalized > 0) & (normalized < 1))
        np.testing.assert_allclose(model.denormalize_log(normalized), cards, rtol=1e-4)

    def test_calibrate_rejects_empty_and_nonpositive(self, env):
        _db, enc, _q = env
        model = create_model("fcn", enc, hidden_dim=8, seed=0)
        with pytest.raises(TrainingError):
            model.calibrate_normalization(np.array([]))
        with pytest.raises(TrainingError):
            model.calibrate_normalization(np.array([0.0, 5.0]))


class TestRegistry:
    def test_all_six_types_registered(self):
        assert set(MODEL_TYPES) == {"fcn", "fcn_pool", "mscn", "rnn", "lstm", "linear"}

    def test_unknown_type_rejected(self, env):
        _db, enc, _q = env
        with pytest.raises(ReproError):
            create_model("transformer", enc)

    def test_register_new_model_type(self, env):
        """The paper's remark: extending the candidate set from K to K+1."""
        _db, enc, _q = env
        from repro.ce.models import FCN
        from repro.ce.registry import MODEL_REGISTRY

        class WideFCN(FCN):
            model_type = "wide_fcn_test"

        try:
            register_model(WideFCN)
            assert "wide_fcn_test" in MODEL_REGISTRY
            with pytest.raises(ReproError):
                register_model(WideFCN)  # duplicate
        finally:
            MODEL_REGISTRY.pop("wide_fcn_test", None)

    def test_register_rejects_non_estimator(self):
        with pytest.raises(ReproError):
            register_model(dict)
