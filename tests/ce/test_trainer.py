"""Training, incremental updates, and the differentiable unrolled update."""

import numpy as np
import pytest

from repro.ce import (
    TrainConfig,
    create_model,
    evaluate_q_errors,
    incremental_update,
    train_model,
    unrolled_update,
)
from repro.datasets import load_dataset
from repro.db import Executor
from repro.nn import Tensor, grad
from repro.utils.errors import TrainingError
from repro.workload import QueryEncoder, WorkloadGenerator
from repro.workload.workload import Workload


@pytest.fixture(scope="module")
def env():
    db = load_dataset("dmv", scale="smoke", seed=0)
    ex = Executor(db)
    gen = WorkloadGenerator(db, ex, seed=1)
    train = gen.generate(80)
    test = gen.generate(30)
    enc = QueryEncoder(db.schema)
    return db, ex, enc, train, test


def trained_model(env, epochs=25):
    _db, _ex, enc, train, _test = env
    model = create_model("fcn", enc, hidden_dim=12, seed=0)
    result = train_model(model, train, TrainConfig(epochs=epochs, seed=0))
    return model, result


class TestTraining:
    def test_loss_decreases(self, env):
        _model, result = trained_model(env)
        assert result.losses[-1] < result.losses[0]

    def test_training_beats_untrained(self, env):
        _db, _ex, enc, train, test = env
        untrained = create_model("fcn", enc, hidden_dim=12, seed=0)
        untrained.calibrate_normalization(train.cardinalities)
        trained, _ = trained_model(env)
        q_untrained = evaluate_q_errors(untrained, test)
        q_trained = evaluate_q_errors(trained, test)
        assert q_trained.mean() < q_untrained.mean()

    def test_empty_workload_rejected(self, env):
        _db, _ex, enc, _train, _test = env
        model = create_model("fcn", enc, hidden_dim=12, seed=0)
        with pytest.raises(TrainingError):
            train_model(model, Workload([]))

    def test_deterministic(self, env):
        a, _ = trained_model(env, epochs=5)
        b, _ = trained_model(env, epochs=5)
        np.testing.assert_array_equal(a.flat_parameters(), b.flat_parameters())


class TestIncrementalUpdate:
    def test_moves_parameters(self, env):
        _db, _ex, _enc, train, _test = env
        model, _ = trained_model(env)
        before = model.flat_parameters().copy()
        incremental_update(model, train[:10], steps=3, lr=1.0)
        assert not np.array_equal(before, model.flat_parameters())

    def test_losses_reported_per_step(self, env):
        model, _ = trained_model(env)
        _db, _ex, _enc, train, _test = env
        losses = incremental_update(model, train[:10], steps=4, lr=0.5)
        assert len(losses) == 4

    def test_fits_update_batch(self, env):
        """Updating on true labels reduces loss on those same queries."""
        model, _ = trained_model(env)
        _db, _ex, _enc, train, _test = env
        losses = incremental_update(model, train[:10], steps=8, lr=1.0)
        assert losses[-1] < losses[0]

    def test_empty_rejected(self, env):
        model, _ = trained_model(env)
        with pytest.raises(TrainingError):
            incremental_update(model, Workload([]))


class TestUnrolledUpdate:
    def test_matches_incremental_update(self, env):
        """The differentiable unroll computes the same K-step result."""
        _db, _ex, enc, train, _test = env
        model, _ = trained_model(env)
        batch = train[:10]
        x = Tensor(batch.encode(enc))
        y = Tensor(model.normalize_log(batch.cardinalities))

        poisoned = unrolled_update(model, x, y, steps=4, lr=1.0)

        twin = create_model("fcn", enc, hidden_dim=12, seed=0)
        twin.calibrate_normalization(train.cardinalities)
        twin.load_state_dict(model.state_dict())
        incremental_update(twin, batch, steps=4, lr=1.0)

        unrolled_flat = np.concatenate(
            [p.data.reshape(-1) for _n, p in poisoned.named_parameters()]
        )
        np.testing.assert_allclose(unrolled_flat, twin.flat_parameters(), rtol=1e-8)

    def test_original_model_untouched(self, env):
        _db, _ex, enc, train, _test = env
        model, _ = trained_model(env)
        before = model.flat_parameters().copy()
        x = Tensor(train[:5].encode(enc))
        y = Tensor(model.normalize_log(train[:5].cardinalities))
        unrolled_update(model, x, y, steps=2, lr=1.0)
        np.testing.assert_array_equal(before, model.flat_parameters())

    def test_gradient_reaches_queries(self, env):
        """The whole point: d(post-update loss)/d(query encodings) != 0."""
        _db, _ex, enc, train, test = env
        model, _ = trained_model(env)
        x = Tensor(train[:5].encode(enc), requires_grad=True)
        y = Tensor(model.normalize_log(train[:5].cardinalities))
        poisoned = unrolled_update(model, x, y, steps=2, lr=1.0)
        test_x = Tensor(test.encode(enc))
        test_y = Tensor(model.normalize_log(test.cardinalities))
        outer = (poisoned(test_x) - test_y).abs().mean()
        (gx,) = grad(outer, [x])
        assert np.abs(gx.data).sum() > 0

    def test_invalid_steps(self, env):
        _db, _ex, enc, train, _test = env
        model, _ = trained_model(env)
        x = Tensor(train[:2].encode(enc))
        y = Tensor(model.normalize_log(train[:2].cardinalities))
        with pytest.raises(TrainingError):
            unrolled_update(model, x, y, steps=0)


class TestEvaluate:
    def test_q_errors_at_least_one(self, env):
        _db, _ex, _enc, _train, test = env
        model, _ = trained_model(env)
        errors = evaluate_q_errors(model, test)
        assert np.all(errors >= 1.0)
        assert errors.shape == (len(test),)

    def test_empty_rejected(self, env):
        model, _ = trained_model(env)
        with pytest.raises(TrainingError):
            evaluate_q_errors(model, Workload([]))


class TestBatchedEquivalence:
    """The batched/cached hot paths vs their per-sample references."""

    def test_evaluate_uses_cached_encoding(self, env):
        """evaluate_q_errors through the workload encode cache must equal a
        query-by-query estimate of the same workload."""
        _db, _ex, _enc, _train, test = env
        model, _ = trained_model(env)
        cached = evaluate_q_errors(model, test)
        per_query = np.abs(
            np.array([float(model.estimate([e.query])[0]) for e in test])
        )
        from repro.metrics.qerror import q_errors

        reference = q_errors(per_query, test.cardinalities)
        np.testing.assert_allclose(cached, reference, rtol=0, atol=1e-9)

    def test_unrolled_update_matches_per_sample_accumulation(self, env):
        """The minibatched unrolled update == averaging per-sample grads.

        The unrolled update takes full-batch GD steps whose gradient is the
        mean over samples; accumulating each sample's gradient separately
        and averaging must land on the same parameters to float precision.
        """
        _db, _ex, enc, _train, test = env
        model, _ = trained_model(env)
        x_np = test.encode(enc)[:16]
        y_np = model.normalize_log(test.cardinalities[:16])
        steps, lr = 3, 0.5

        poisoned = unrolled_update(model, Tensor(x_np), Tensor(y_np), steps=steps, lr=lr)
        batched = poisoned.flat_parameters()

        from repro.ce.trainer import training_loss

        twin = model.clone_with_parameters(
            {n: Tensor(p.data.copy(), requires_grad=True)
             for n, p in model.named_parameters()}
        )
        n = x_np.shape[0]
        for _ in range(steps):
            params = [p for _name, p in twin.named_parameters()]
            accum = [np.zeros_like(p.data) for p in params]
            for i in range(n):
                for p in params:
                    p.zero_grad()
                # per-sample loss carries the same 1/n weight the batch
                # mean gives each sample
                loss = training_loss(
                    twin, Tensor(x_np[i : i + 1]), Tensor(y_np[i : i + 1])
                )
                loss.backward()
                for acc, p in zip(accum, params):
                    acc += p.grad.data / n
            next_params = {
                name: Tensor(p.data - lr * g, requires_grad=True)
                for (name, p), g in zip(twin.named_parameters(), accum)
            }
            twin = twin.clone_with_parameters(next_params)
        np.testing.assert_allclose(
            batched, twin.flat_parameters(), rtol=0, atol=1e-9
        )
