"""The black-box deployment facade and its update-on-execute mechanism."""

import numpy as np
import pytest

from repro.ce import DeployedEstimator, TrainConfig, create_model, train_model
from repro.datasets import load_dataset
from repro.db import Executor, Query
from repro.utils.errors import TrainingError
from repro.workload import QueryEncoder, WorkloadGenerator


@pytest.fixture()
def deployed():
    db = load_dataset("dmv", scale="smoke", seed=0)
    ex = Executor(db)
    gen = WorkloadGenerator(db, ex, seed=1)
    train = gen.generate(60)
    enc = QueryEncoder(db.schema)
    model = create_model("fcn", enc, hidden_dim=12, seed=0)
    train_model(model, train, TrainConfig(epochs=15, seed=0))
    return db, ex, gen, DeployedEstimator(model, ex, update_steps=3)


class TestSurface:
    def test_explain_returns_positive_estimate(self, deployed):
        db, _ex, gen, bb = deployed
        q = gen.random_query()
        assert bb.explain(q) > 0

    def test_explain_many_matches_explain(self, deployed):
        _db, _ex, gen, bb = deployed
        qs = [gen.random_query() for _ in range(3)]
        many = bb.explain_many(qs)
        singles = [bb.explain(q) for q in qs]
        np.testing.assert_allclose(many, singles)

    def test_count_matches_executor(self, deployed):
        db, ex, gen, bb = deployed
        q = gen.random_query()
        assert bb.count(q) == ex.count(q)

    def test_explain_timed_reports_elapsed(self, deployed):
        _db, _ex, gen, bb = deployed
        _est, seconds = bb.explain_timed([gen.random_query()])
        assert seconds >= 0.0


class TestExecute:
    def test_execute_updates_model(self, deployed):
        _db, _ex, gen, bb = deployed
        before = bb.snapshot()
        queries = [gen.random_query() for _ in range(10)]
        report = bb.execute(queries)
        assert report.executed == 10
        after = bb.snapshot()
        changed = any(
            not np.array_equal(before[k], after[k]) for k in before
        )
        assert changed
        assert len(bb.history) > 0

    def test_execute_requires_queries(self, deployed):
        _db, _ex, _gen, bb = deployed
        with pytest.raises(TrainingError):
            bb.execute([])

    def test_empty_queries_do_not_update(self, deployed):
        db, ex, _gen, bb = deployed
        # a sliver strictly between two integer domain values: always empty
        impossible = Query.build(
            db.schema, ["dmv"], {("dmv", "model_year"): (0.0001, 0.0002)}
        )
        assert ex.count(impossible) == 0
        before = bb.snapshot()
        report = bb.execute([impossible])
        assert report.update_losses == []
        after = bb.snapshot()
        assert all(np.array_equal(before[k], after[k]) for k in before)

    def test_anomaly_filter_blocks_updates(self, deployed):
        _db, _ex, gen, bb = deployed
        bb.anomaly_filter = lambda queries: np.ones(len(queries), dtype=bool)
        before = bb.snapshot()
        report = bb.execute([gen.random_query() for _ in range(5)])
        assert report.rejected == 5
        after = bb.snapshot()
        assert all(np.array_equal(before[k], after[k]) for k in before)

    def test_snapshot_restore_roundtrip(self, deployed):
        _db, _ex, gen, bb = deployed
        snap = bb.snapshot()
        bb.execute([gen.random_query() for _ in range(5)])
        bb.restore(snap)
        assert all(
            np.array_equal(snap[k], bb.snapshot()[k]) for k in snap
        )
