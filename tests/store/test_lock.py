"""O_EXCL manifest locks: bodies, contention, staleness, gc refusal."""

import json
import os
import socket
import subprocess
import sys
import time

import pytest

from repro.store import (
    ArtifactStore,
    CrashPoint,
    LockHeld,
    ManifestLock,
    is_stale,
    lock_path_for,
    read_lock,
)
from repro.utils.errors import StoreError


@pytest.fixture()
def target(tmp_path):
    return tmp_path / "manifest.json"


def write_lock_body(target, **overrides):
    body = {
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "unix": time.time(),
        "owner": "test",
    }
    body.update(overrides)
    path = lock_path_for(target)
    path.write_text(json.dumps(body), encoding="utf-8")
    return path


class TestManifestLock:
    def test_acquire_writes_body_release_removes(self, target):
        with ManifestLock(target, owner="run:probe") as lock:
            assert lock.held
            body = read_lock(lock.lock_path)
            assert body["pid"] == os.getpid()
            assert body["owner"] == "run:probe"
            assert body["host"] == socket.gethostname()
        assert not lock.held
        assert not lock_path_for(target).exists()

    def test_live_contention_raises_lock_held(self, target):
        with ManifestLock(target, owner="first"):
            contender = ManifestLock(
                target, owner="second", timeout=0.2, poll_interval=0.01
            )
            with pytest.raises(LockHeld, match="held by"):
                contender.acquire()

    def test_dead_holder_is_broken(self, target):
        # A real pid that provably exited: the next acquirer must treat
        # its lock as stale and break it instead of waiting out the age.
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        write_lock_body(target, pid=proc.pid, owner="dead")
        lock = ManifestLock(target, timeout=1.0).acquire()
        try:
            assert lock.broke_stale == 1
            assert read_lock(lock.lock_path)["pid"] == os.getpid()
        finally:
            lock.release()

    def test_foreign_host_lock_goes_stale_by_age_only(self, target):
        # We can't probe pids on another host, so age decides.
        path = write_lock_body(target, host="elsewhere", unix=time.time() - 1000.0)
        assert is_stale(path)
        assert not is_stale(path, stale_seconds=10_000.0)
        write_lock_body(target, host="elsewhere")
        assert not is_stale(path)

    def test_missing_lock_is_not_stale(self, target):
        assert not is_stale(lock_path_for(target))
        assert read_lock(lock_path_for(target)) is None

    def test_corrupt_body_still_ages_out(self, target):
        path = lock_path_for(target)
        path.write_text("not json", encoding="utf-8")
        assert read_lock(path) == {}
        assert not is_stale(path)  # fresh mtime: someone may be mid-write
        old = time.time() - 1000.0
        os.utime(path, (old, old))
        assert is_stale(path)

    def test_crash_drill_unwind_still_releases(self, target):
        # CrashPoint is a BaseException; __exit__ must run for it so
        # in-process drills never leave locks behind.
        with pytest.raises(CrashPoint):
            with ManifestLock(target, owner="drill"):
                raise CrashPoint("store:commit", 1)
        assert not lock_path_for(target).exists()


class TestStoreGc:
    def test_gc_refuses_while_a_writer_is_live(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.create_run("test", "r1", params={}, seed=0)
        with ManifestLock(store.manifest_path("r1"), owner="run:r1"):
            assert store.live_locks() == [
                lock_path_for(store.manifest_path("r1"))
            ]
            with pytest.raises(StoreError, match="refusing to gc.*r1"):
                store.gc()
        assert store.live_locks() == []
        report = store.gc()
        assert report["stale_locks_removed"] == 0
        assert report["runs"] == 1

    def test_gc_sweeps_stale_locks_instead_of_refusing(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.create_run("test", "r1", params={}, seed=0)
        path = write_lock_body(
            store.manifest_path("r1"), host="elsewhere",
            unix=time.time() - 1000.0,
        )
        assert store.live_locks() == []
        report = store.gc()
        assert report["stale_locks_removed"] == 1
        assert not path.exists()
