"""Tests for the durable artifact/run store (repro.store)."""
