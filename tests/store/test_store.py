"""Content-addressed blobs, typed artifacts, run manifests, lineage, gc."""

import numpy as np
import pytest

from repro.ce import create_model
from repro.datasets import load_dataset
from repro.db import Executor
from repro.store import ArtifactStore, content_digest
from repro.utils.errors import StoreError
from repro.workload import QueryEncoder, WorkloadGenerator


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestObjects:
    def test_put_get_roundtrip(self, store):
        artifact = store.put_bytes(b"hello", kind="json")
        assert artifact.digest == content_digest(b"hello")
        assert artifact.size == 5
        assert store.get_bytes(artifact.digest) == b"hello"
        assert store.has_object(artifact.digest)

    def test_put_is_idempotent_and_deduplicates(self, store):
        a = store.put_bytes(b"same", kind="json")
        b = store.put_bytes(b"same", kind="report")
        assert a.digest == b.digest
        assert len(list(store.objects_dir.glob("*/*"))) == 1

    def test_unknown_kind_rejected(self, store):
        with pytest.raises(StoreError, match="unknown artifact kind"):
            store.put_bytes(b"x", kind="pickle")

    def test_missing_object_raises(self, store):
        with pytest.raises(StoreError, match="missing artifact"):
            store.get_bytes(content_digest(b"never written"))

    def test_corrupt_object_detected_on_read(self, store):
        artifact = store.put_bytes(b"original payload")
        store.object_path(artifact.digest).write_bytes(b"origi")  # torn
        assert not store.verify_object(artifact.digest)
        with pytest.raises(StoreError, match="torn or tampered"):
            store.get_bytes(artifact.digest)

    def test_put_heals_a_corrupt_blob(self, store):
        artifact = store.put_bytes(b"payload")
        store.object_path(artifact.digest).write_bytes(b"pay")
        store.put_bytes(b"payload")
        assert store.get_bytes(artifact.digest) == b"payload"


class TestTypedArtifacts:
    def test_json_roundtrip_is_canonical(self, store):
        a = store.put_json({"b": 1, "a": np.float64(2)})
        b = store.put_json({"a": 2.0, "b": 1})
        assert a.digest == b.digest
        assert store.get_json(a.digest) == {"a": 2.0, "b": 1}

    def test_checkpoint_roundtrip_bitwise(self, store):
        state = {"w": np.arange(12.0).reshape(3, 4), "cap": np.float64(9.5)}
        artifact = store.put_checkpoint(state)
        back = store.get_checkpoint(artifact.digest)
        for name in state:
            np.testing.assert_array_equal(back[name], np.asarray(state[name]))

    def test_workload_roundtrip_preserves_queries_and_labels(self, store):
        db = load_dataset("dmv", scale="smoke", seed=0)
        workload = WorkloadGenerator(db, Executor(db), seed=3).generate(12)
        artifact = store.put_workload(workload)
        assert artifact.kind == "workload"
        back = store.get_workload(artifact.digest, db.schema)
        assert len(back) == len(workload)
        for original, restored in zip(workload, back):
            assert restored.cardinality == original.cardinality
            assert sorted(restored.query.tables) == sorted(original.query.tables)
            assert restored.query.predicates == original.query.predicates

    def test_full_estimator_state_survives_the_store(self, store):
        db = load_dataset("dmv", scale="smoke", seed=0)
        encoder = QueryEncoder(db.schema)
        model = create_model("fcn", encoder, hidden_dim=8, seed=0)
        model.log_cap = 13.75
        digest = store.put_checkpoint(model.full_state_dict()).digest
        twin = create_model("fcn", encoder, hidden_dim=8, seed=42)
        twin.load_full_state_dict(store.get_checkpoint(digest))
        assert twin.log_cap == pytest.approx(13.75)
        np.testing.assert_array_equal(twin.flat_parameters(), model.flat_parameters())


class TestRuns:
    def test_create_open_and_list(self, store):
        run = store.create_run("demo", "run-1", params={"k": 1}, seed=5)
        run.set_step("a", status="done", artifact=None)
        run.commit()
        assert store.has_run("run-1")
        reopened = store.open_run("run-1")
        assert reopened.manifest["pipeline"] == "demo"
        assert reopened.manifest["seed"] == 5
        rows = store.list_runs()
        assert [r["run_id"] for r in rows] == ["run-1"]
        assert rows[0]["steps_done"] == 1

    def test_duplicate_and_invalid_run_ids_rejected(self, store):
        store.create_run("demo", "run-1")
        with pytest.raises(StoreError, match="already exists"):
            store.create_run("demo", "run-1")
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(StoreError, match="invalid run id"):
                store.create_run("demo", bad)

    def test_open_unknown_run_lists_known(self, store):
        store.create_run("demo", "run-1")
        with pytest.raises(StoreError, match="known runs: run-1"):
            store.open_run("run-2")

    def test_lineage_edges_and_events(self, store):
        run = store.create_run("demo", "run-1")
        parent = store.put_checkpoint({"w": np.ones(2)})
        child = store.put_json({"result": 1})
        run.record_artifact("surrogate", parent)
        run.record_artifact("outcome", child, parents=[parent.digest], step="cell")
        run.record_event("promotion", digest=parent.digest, round=0)
        run.commit()
        reopened = store.open_run("run-1")
        assert reopened.artifact_digest("outcome") == child.digest
        assert reopened.manifest["artifacts"]["outcome"]["parents"] == [parent.digest]
        assert reopened.last_event("promotion")["digest"] == parent.digest
        assert reopened.events("rollback") == []

    def test_delete_run(self, store):
        store.create_run("demo", "run-1")
        store.delete_run("run-1")
        assert not store.has_run("run-1")
        with pytest.raises(StoreError, match="unknown run"):
            store.delete_run("run-1")


class TestGc:
    def test_gc_keeps_referenced_and_drops_orphans(self, store):
        run = store.create_run("demo", "run-1")
        kept = store.put_json({"keep": True})
        run.set_step("a", status="done", artifact=kept.digest, kind="json")
        run.record_artifact("a", kept, step="a")
        run.commit()
        orphan = store.put_bytes(b"orphaned blob")
        (store.root / "stray.tmp").write_bytes(b"leftover")
        report = store.gc()
        assert report["removed_objects"] == 1
        assert report["kept_objects"] == 1
        assert report["stray_tmp_removed"] == 1
        assert store.verify_object(kept.digest)
        assert not store.has_object(orphan.digest)

    def test_event_digests_are_gc_roots(self, store):
        run = store.create_run("demo", "run-1")
        checkpoint = store.put_checkpoint({"w": np.ones(3)})
        run.record_event("promotion", digest=checkpoint.digest, round=0)
        run.commit()
        store.gc()
        assert store.verify_object(checkpoint.digest)
