"""Checkpointed step DAGs: memoization, resume, compatibility, codecs."""

import numpy as np
import pytest

from repro.store import (
    ArtifactStore,
    CrashPoint,
    FaultInjector,
    FaultSpec,
    Pipeline,
    Step,
    build_pipeline,
    inject,
    register_pipeline,
    resume_run,
    step_seed,
)
from repro.utils.errors import StoreError


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def counting_pipeline(calls, params=None, seed=0):
    def first(ctx):
        calls.append("first")
        return {"value": int(ctx.rng.integers(1000)), "seed": ctx.seed}

    def second(ctx):
        calls.append("second")
        return {"doubled": ctx.inputs["first"]["value"] * 2}

    return Pipeline(
        "counting",
        [Step("first", first), Step("second", second, deps=("first",))],
        params=params or {"n": 1},
        seed=seed,
    )


class TestStepSeed:
    def test_stable_and_per_step(self):
        assert step_seed(0, "a") == step_seed(0, "a")
        assert step_seed(0, "a") != step_seed(0, "b")
        assert step_seed(0, "a") != step_seed(1, "a")

    def test_step_rng_derives_from_step_seed(self, store):
        calls = []
        result = counting_pipeline(calls, seed=9).run(store)
        assert result.outputs["first"]["seed"] == step_seed(9, "first")


class TestValidation:
    def test_duplicate_step_names_rejected(self):
        with pytest.raises(StoreError, match="duplicate step name"):
            Pipeline("p", [Step("a", lambda c: {}), Step("a", lambda c: {})])

    def test_forward_dependency_rejected(self):
        with pytest.raises(StoreError, match="topological order"):
            Pipeline("p", [Step("a", lambda c: {}, deps=("b",)),
                           Step("b", lambda c: {})])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(StoreError, match="no steps"):
            Pipeline("p", [])

    def test_checkpoint_step_must_return_state_dict(self, store):
        bad = Pipeline("p", [Step("a", lambda c: {"not": "arrays"},
                                  kind="checkpoint")])
        with pytest.raises(StoreError, match="dict of numpy arrays"):
            bad.run(store)


class TestMemoization:
    def test_second_run_replays_without_reexecuting(self, store):
        calls = []
        pipeline = counting_pipeline(calls)
        first = pipeline.run(store)
        assert first.executed == ["first", "second"]
        again = pipeline.run(store, resume=True)
        assert again.skipped == ["first", "second"]
        assert again.executed == []
        assert calls == ["first", "second"]  # step functions ran exactly once
        assert again.outputs == first.outputs
        assert again.resumed_fraction == pytest.approx(1.0)

    def test_existing_run_requires_resume_flag(self, store):
        calls = []
        pipeline = counting_pipeline(calls)
        pipeline.run(store)
        with pytest.raises(StoreError, match="resume it or pick a new id"):
            pipeline.run(store)

    def test_corrupt_step_artifact_forces_reexecution(self, store):
        calls = []
        pipeline = counting_pipeline(calls)
        result = pipeline.run(store)
        digest = store.open_run(result.run_id).step("first")["artifact"]
        store.object_path(digest).write_bytes(b"torn!")
        again = pipeline.run(store, resume=True)
        # 'first' re-ran (its blob failed verification); the re-derived
        # artifact is byte-identical, so 'second' still replays.
        assert again.executed == ["first"]
        assert again.skipped == ["second"]
        assert store.verify_object(digest)

    def test_mismatched_params_or_seed_refused(self, store):
        calls = []
        counting_pipeline(calls, params={"n": 1}, seed=0).run(store)
        run_id = store.run_ids()[0]
        with pytest.raises(StoreError, match="different params"):
            counting_pipeline(calls, params={"n": 2}, seed=0).run(
                store, run_id=run_id, resume=True
            )
        with pytest.raises(StoreError, match="seed"):
            counting_pipeline(calls, params={"n": 1}, seed=3).run(
                store, run_id=run_id, resume=True
            )

    def test_wrong_pipeline_name_refused(self, store):
        calls = []
        counting_pipeline(calls).run(store, run_id="shared-id")
        other = Pipeline("other", [Step("x", lambda c: {})])
        with pytest.raises(StoreError, match="belongs to pipeline"):
            other.run(store, run_id="shared-id", resume=True)


class TestCrashResume:
    def test_crash_between_commits_resumes_to_identical_outputs(self, store):
        calls = []
        pipeline = counting_pipeline(calls)
        injector = FaultInjector([FaultSpec(site="step:second:pre-commit")])
        with inject(injector), pytest.raises(CrashPoint):
            pipeline.run(store)
        assert calls == ["first", "second"]  # died before committing 'second'
        resumed = pipeline.run(store, resume=True)
        assert resumed.skipped == ["first"]
        assert resumed.executed == ["second"]
        assert calls == ["first", "second", "second"]
        clean_store_outputs = counting_pipeline([], seed=0).run(
            ArtifactStore(store.root.parent / "fresh")
        ).outputs
        assert resumed.outputs == clean_store_outputs

    def test_dependents_receive_decoded_artifacts(self, store):
        def emits_tuple(_ctx):
            return {"pair": (1, 2)}

        def consumes(ctx):
            # JSON decoding turns tuples into lists; a fresh run must see
            # the same decoded value a resumed run would.
            assert ctx.inputs["emit"]["pair"] == [1, 2]
            return {"ok": True}

        Pipeline("decode", [Step("emit", emits_tuple),
                            Step("use", consumes, deps=("emit",))]).run(store)


class TestCheckpointSteps:
    def test_checkpoint_kind_roundtrips_arrays(self, store):
        def trains(ctx):
            return {"w": ctx.rng.normal(size=(2, 3))}

        def consumes(ctx):
            return {"norm": float(np.linalg.norm(ctx.inputs["train"]["w"]))}

        pipeline = Pipeline("ckpt", [
            Step("train", trains, kind="checkpoint"),
            Step("use", consumes, deps=("train",)),
        ])
        result = pipeline.run(store)
        replay = pipeline.run(store, resume=True)
        assert replay.outputs["use"] == result.outputs["use"]
        np.testing.assert_array_equal(replay.outputs["train"]["w"],
                                      result.outputs["train"]["w"])

    def test_lineage_parents_point_at_dependency_artifacts(self, store):
        pipeline = Pipeline("lineage", [
            Step("a", lambda c: {"x": 1}),
            Step("b", lambda c: {"y": 2}, deps=("a",)),
        ])
        result = pipeline.run(store)
        manifest = store.open_run(result.run_id).manifest
        assert manifest["steps"]["b"]["parents"] == [
            manifest["steps"]["a"]["artifact"]
        ]


class TestBuilders:
    def test_registered_builder_resumes_from_manifest_alone(self, store):
        calls = []

        @register_pipeline("registered-counting")
        def build(params, seed):
            pipeline = counting_pipeline(calls, params=params, seed=seed)
            pipeline.name = "registered-counting"
            return pipeline

        build({"n": 4}, 11).run(store, run_id="the-run")
        result = resume_run(store, "the-run")
        assert result.skipped == ["first", "second"]
        assert result.outputs["first"]["seed"] == step_seed(11, "first")

    def test_unknown_builder_raises_with_known_names(self, store):
        with pytest.raises(StoreError, match="no pipeline builder registered"):
            build_pipeline("never-registered", {}, 0)
