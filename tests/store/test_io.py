"""Atomic writes, retry/backoff under injected IO faults, canonical JSON."""

import numpy as np
import pytest

from repro.store import (
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    atomic_write_bytes,
    atomic_write_json,
    canonical_json_bytes,
    inject,
    jsonify,
)
from repro.store.faults import CrashPoint
from repro.utils.errors import StoreError


class TestAtomicWrite:
    def test_writes_and_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "artifact.bin"
        atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"

    def test_no_temp_files_left_behind(self, tmp_path):
        atomic_write_bytes(tmp_path / "a.bin", b"data")
        assert [p.name for p in tmp_path.glob("*.tmp")] == []

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "a.json"
        atomic_write_bytes(path, b"old content")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_transient_errors_are_retried_with_backoff(self, tmp_path):
        injector = FaultInjector([FaultSpec(site="write:a.bin", kind="transient",
                                            times=2)])
        sleeps = []
        with inject(injector):
            atomic_write_bytes(tmp_path / "a.bin", b"ok",
                               retry=RetryPolicy(attempts=4, backoff=0.5),
                               sleep=sleeps.append)
        assert (tmp_path / "a.bin").read_bytes() == b"ok"
        assert sleeps == [0.5, 1.0]  # exponential backoff between failed tries
        assert [f.kind for f in injector.fired] == ["transient", "transient"]

    def test_exhausted_retries_raise_store_error(self, tmp_path):
        injector = FaultInjector([FaultSpec(site="write:a.bin", kind="transient",
                                            times=99)])
        with inject(injector), pytest.raises(StoreError, match="after 2 attempts"):
            atomic_write_bytes(tmp_path / "a.bin", b"ok",
                               retry=RetryPolicy(attempts=2, backoff=0.0),
                               sleep=lambda _s: None)
        assert not (tmp_path / "a.bin").exists()

    def test_torn_write_leaves_truncated_bytes_then_crashes(self, tmp_path):
        payload = b"0123456789" * 10
        injector = FaultInjector([FaultSpec(site="write:a.bin", kind="torn",
                                            keep_bytes=7)])
        with inject(injector), pytest.raises(CrashPoint):
            atomic_write_bytes(tmp_path / "a.bin", payload)
        # The torn prefix reached the FINAL path — exactly what content-hash
        # verification must catch on the next read.
        assert (tmp_path / "a.bin").read_bytes() == payload[:7]

    def test_crash_site_boundaries_fire(self, tmp_path):
        for boundary in ("begin", "done"):
            injector = FaultInjector([FaultSpec(site=f"write:a.bin:{boundary}")])
            with inject(injector), pytest.raises(CrashPoint):
                atomic_write_bytes(tmp_path / boundary / "a.bin", b"x")

    def test_retry_policy_validation(self):
        with pytest.raises(StoreError):
            RetryPolicy(attempts=0)
        with pytest.raises(StoreError):
            RetryPolicy(multiplier=0.5)


class TestCanonicalJson:
    def test_same_payload_same_bytes(self):
        a = canonical_json_bytes({"b": 1, "a": [1, 2]})
        b = canonical_json_bytes({"a": [1, 2], "b": 1})
        assert a == b
        assert a.endswith(b"\n")

    def test_numpy_values_are_coerced(self):
        payload = {
            "i": np.int64(3),
            "f": np.float32(1.5),
            "flag": np.bool_(True),
            "arr": np.arange(3),
        }
        assert jsonify(payload) == {"i": 3, "f": 1.5, "flag": True, "arr": [0, 1, 2]}
        assert b'"arr"' in canonical_json_bytes(payload)

    def test_atomic_write_json_round_trips(self, tmp_path):
        import json

        path = atomic_write_json(tmp_path / "r.json", {"z": 1, "a": np.float64(2)})
        assert json.loads(path.read_text()) == {"a": 2.0, "z": 1}


class TestFaultSpecValidation:
    def test_rejects_bad_specs(self):
        from repro.utils.errors import ReproError

        with pytest.raises(ReproError):
            FaultSpec(site="x", kind="meteor")
        with pytest.raises(ReproError):
            FaultSpec(site="x", ordinal=0)
        with pytest.raises(ReproError):
            FaultSpec(site="x", kind="torn", keep_bytes=-1)

    def test_crash_fires_on_requested_ordinal_only(self, tmp_path):
        injector = FaultInjector([FaultSpec(site="write:*:done", ordinal=2)])
        with inject(injector):
            atomic_write_bytes(tmp_path / "one.bin", b"1")
            with pytest.raises(CrashPoint) as exc_info:
                atomic_write_bytes(tmp_path / "two.bin", b"2")
        assert exc_info.value.site == "write:two.bin:done"
        # Ordinal-2 means the first write survived untouched.
        assert (tmp_path / "one.bin").read_bytes() == b"1"

    def test_sites_reached_records_dry_run_boundaries(self, tmp_path):
        injector = FaultInjector()
        with inject(injector):
            atomic_write_bytes(tmp_path / "a.bin", b"x")
        assert injector.sites_reached == ["write:a.bin:begin", "write:a.bin:done"]
