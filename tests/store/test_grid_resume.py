"""Kill-at-every-step-boundary sweep over the durable attack grid.

The PR 5 acceptance test: crash the grid at each step boundary in turn,
resume, and require every artifact — including the merged report — to be
byte-identical (same content digest) to an uninterrupted run's.
"""

import pytest

from repro.harness.pipelines import run_grid_durable
from repro.store import (
    ArtifactStore,
    CrashPoint,
    FaultInjector,
    FaultSpec,
    inject,
    resume_run,
)

#: Cheap grid: one scenario, surrogate-free methods plus one
#: surrogate-based method so the checkpoint dependency path is swept too.
METHODS = ("clean", "random", "lbs")
SEED = 0


def run_reference(tmp_path):
    store = ArtifactStore(tmp_path / "reference")
    injector = FaultInjector()  # no specs: a dry run recording boundaries
    with inject(injector):
        result = run_grid_durable(store, methods=METHODS, seed=SEED)
    steps = store.open_run(result.run_id).manifest["steps"]
    digests = {name: entry["artifact"] for name, entry in steps.items()}
    boundaries = [s for s in injector.sites_reached if s.startswith("step:")]
    return digests, boundaries


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    return run_reference(tmp_path_factory.mktemp("grid"))


class TestKillSweep:
    def test_every_step_boundary_is_observed(self, reference):
        _digests, boundaries = reference
        # 5 steps (surrogate, three cells, report) x 3 boundaries each.
        assert len(boundaries) == 15
        for suffix in ("start", "pre-commit", "post-commit"):
            assert sum(1 for b in boundaries if b.endswith(suffix)) == 5

    def test_resume_after_crash_at_every_boundary_is_byte_identical(
        self, reference, tmp_path
    ):
        digests, boundaries = reference
        for index, boundary in enumerate(boundaries):
            store = ArtifactStore(tmp_path / f"crash-{index}")
            injector = FaultInjector([FaultSpec(site=boundary, kind="crash")])
            with inject(injector), pytest.raises(CrashPoint):
                run_grid_durable(store, methods=METHODS, seed=SEED)
            result = resume_run(store, store.run_ids()[0])
            resumed = store.open_run(result.run_id).manifest["steps"]
            assert {n: e["artifact"] for n, e in resumed.items()} == digests, (
                f"resume after crash at {boundary!r} diverged"
            )

    def test_crash_after_commit_replays_that_step(self, reference, tmp_path):
        digests, _boundaries = reference
        store = ArtifactStore(tmp_path / "post")
        site = "step:cell:dmv/fcn/random:post-commit"
        with inject(FaultInjector([FaultSpec(site=site)])), pytest.raises(CrashPoint):
            run_grid_durable(store, methods=METHODS, seed=SEED)
        result = resume_run(store, store.run_ids()[0])
        # Everything up to and including the committed cell replays from
        # its checkpoint; only the tail re-executes.
        assert "cell:dmv/fcn/random" in result.skipped
        assert "surrogate:dmv/fcn" in result.skipped
        assert result.executed == ["cell:dmv/fcn/lbs", "report"]
        assert store.open_run(result.run_id).step("report")["artifact"] == (
            digests["report"]
        )

    def test_resume_of_a_complete_run_executes_nothing(self, reference, tmp_path):
        store = ArtifactStore(tmp_path / "complete")
        first = run_grid_durable(store, methods=METHODS, seed=SEED)
        replay = resume_run(store, first.run_id)
        assert replay.executed == []
        assert replay.resumed_fraction == pytest.approx(1.0)
        assert replay.final == first.final


class TestSurrogateLineage:
    def test_cells_record_surrogate_checkpoint_as_parent(self, tmp_path):
        store = ArtifactStore(tmp_path / "lineage")
        result = run_grid_durable(store, methods=("clean", "lbs"), seed=SEED)
        manifest = store.open_run(result.run_id).manifest
        surrogate_digest = manifest["steps"]["surrogate:dmv/fcn"]["artifact"]
        assert manifest["steps"]["cell:dmv/fcn/lbs"]["parents"] == [surrogate_digest]
        assert manifest["steps"]["cell:dmv/fcn/clean"]["parents"] == []
        report_parents = manifest["steps"]["report"]["parents"]
        assert manifest["steps"]["cell:dmv/fcn/lbs"]["artifact"] in report_parents
