"""Unit tests for the injectable clock used by timing-sensitive paths."""

import time

import pytest

from repro.utils.clock import (
    FakeClock,
    ManualClock,
    get_clock,
    install_clock,
    use_clock,
)


class TestManualClock:
    def test_reading_is_side_effect_free(self):
        clock = ManualClock(start=5.0)
        assert clock() == 5.0
        assert clock() == 5.0

    def test_advance_moves_time_forward(self):
        clock = ManualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.0) == 1.5
        assert clock() == 1.5

    def test_set_jumps_to_absolute_instant(self):
        clock = ManualClock(start=1.0)
        assert clock.set(3.25) == 3.25
        assert clock.set(3.25) == 3.25  # staying put is allowed
        assert clock() == 3.25

    def test_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-0.1)

    def test_rejects_backwards_set(self):
        clock = ManualClock(start=2.0)
        with pytest.raises(ValueError):
            clock.set(1.0)


class TestFakeClock:
    def test_advances_by_tick_on_every_call(self):
        clock = FakeClock(tick=0.5, start=10.0)
        assert clock() == 10.5
        assert clock() == 11.0
        assert clock() == 11.5

    def test_rejects_nonpositive_tick(self):
        with pytest.raises(ValueError):
            FakeClock(tick=0.0)
        with pytest.raises(ValueError):
            FakeClock(tick=-1.0)


class TestClockInstallation:
    def test_default_clock_is_perf_counter(self):
        assert get_clock() is time.perf_counter

    def test_use_clock_scopes_and_restores(self):
        previous = get_clock()
        fake = FakeClock()
        with use_clock(fake) as installed:
            assert installed is fake
            assert get_clock() is fake
        assert get_clock() is previous

    def test_use_clock_restores_on_exception(self):
        previous = get_clock()
        with pytest.raises(RuntimeError):
            with use_clock(FakeClock()):
                raise RuntimeError("boom")
        assert get_clock() is previous

    def test_install_clock_is_process_wide(self):
        previous = get_clock()
        fake = FakeClock()
        try:
            install_clock(fake)
            assert get_clock() is fake
        finally:
            install_clock(previous)
        assert get_clock() is previous
