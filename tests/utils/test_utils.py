"""Utilities: RNG determinism, scale config, timers, errors."""

import numpy as np
import pytest

from repro.utils import Timer, derive_rng, get_scale, spawn_rngs, timed
from repro.utils.config import available_scales
from repro.utils.errors import QueryError, ReproError, SchemaError


class TestRng:
    def test_same_seed_same_stream(self):
        a = derive_rng(42).random(5)
        b = derive_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert derive_rng(g) is g

    def test_spawn_independent_and_stable(self):
        first = [r.random() for r in spawn_rngs(7, 3)]
        second = [r.random() for r in spawn_rngs(7, 3)]
        assert first == second
        assert len(set(first)) == 3

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_reseed_restarts_the_stream(self):
        from repro.utils.rng import RngMixin

        holder = RngMixin(seed=3)
        first = holder.rng.random(4)
        holder.reseed(3)
        np.testing.assert_array_equal(holder.rng.random(4), first)


class TestScale:
    def test_default_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_scale().name == "smoke"

    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale("smoke").name == "smoke"

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            get_scale("gigantic")

    def test_scales_monotone_in_size(self):
        sizes = [get_scale(n).train_queries for n in available_scales()]
        assert sizes == sorted(sizes)

    def test_poison_ratio(self):
        scale = get_scale("paper")
        assert scale.poison_ratio == pytest.approx(0.045, abs=0.01)


class TestTimer:
    def test_accumulates_spans(self):
        timer = Timer()
        with timer.span("work"):
            pass
        with timer.span("work"):
            pass
        assert timer.counts["work"] == 2
        assert timer.total("work") >= 0.0
        assert timer.mean("work") <= timer.total("work")

    def test_unknown_span_is_zero(self):
        assert Timer().total("nothing") == 0.0

    def test_as_dict_snapshots_totals(self):
        timer = Timer()
        with timer.span("phase"):
            pass
        snapshot = timer.as_dict()
        assert snapshot == {"phase": timer.total("phase")}
        snapshot["phase"] = -1.0  # a copy, not a live view
        assert timer.total("phase") >= 0.0

    def test_timed_contextmanager(self):
        with timed() as elapsed:
            x = elapsed()
        assert elapsed() >= x >= 0.0


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(SchemaError, ReproError)
        assert issubclass(QueryError, ReproError)
