"""Q-error summaries, JS divergence, table rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import (
    QErrorSummary,
    degradation_factor,
    format_value,
    js_divergence_1d,
    q_errors,
    render_table,
    workload_divergence,
)
from repro.utils.errors import ReproError


class TestQErrors:
    def test_symmetry(self):
        a = q_errors(np.array([10.0]), np.array([100.0]))
        b = q_errors(np.array([1000.0]), np.array([100.0]))
        np.testing.assert_allclose(a, b)

    def test_floor_at_one(self):
        errors = q_errors(np.array([5.0, 5.0]), np.array([5.0, 5.0]))
        np.testing.assert_array_equal(errors, [1.0, 1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError):
            q_errors(np.ones(3), np.ones(4))

    @settings(max_examples=40, deadline=None)
    @given(arrays(np.float64, 8, elements=st.floats(1.0, 1e6)))
    def test_always_at_least_one(self, estimates):
        truths = np.full(8, 100.0)
        assert np.all(q_errors(estimates, truths) >= 1.0)


class TestSummary:
    def test_percentiles_ordered(self):
        errors = np.random.default_rng(0).uniform(1, 100, size=500)
        s = QErrorSummary.from_errors(errors)
        assert s.median <= s.p90 <= s.p95 <= s.p99 <= s.max
        assert s.count == 500

    def test_as_row_matches_paper_columns(self):
        s = QErrorSummary.from_errors(np.array([1.0, 2.0, 3.0]))
        assert set(s.as_row()) == {"90th", "95th", "99th", "max"}

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            QErrorSummary.from_errors(np.array([]))

    def test_degradation_factor(self):
        before = np.array([2.0, 2.0])
        after = np.array([20.0, 20.0])
        assert degradation_factor(before, after) == pytest.approx(10.0)
        with pytest.raises(ReproError):
            degradation_factor(np.array([]), after)


class TestDivergence:
    def test_identical_samples_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=500)
        assert js_divergence_1d(x, x.copy()) == pytest.approx(0.0, abs=1e-9)

    def test_disjoint_samples_near_one(self):
        a = np.zeros(200)
        b = np.ones(200)
        assert js_divergence_1d(a, b) > 0.9

    def test_monotone_in_shift(self):
        rng = np.random.default_rng(1)
        base = rng.normal(0, 1, size=800)
        d_small = js_divergence_1d(base, base + 0.5)
        d_large = js_divergence_1d(base, base + 3.0)
        assert d_small < d_large

    def test_constant_samples_zero(self):
        assert js_divergence_1d(np.full(10, 3.0), np.full(10, 3.0)) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            js_divergence_1d(np.array([]), np.ones(3))

    def test_workload_divergence_averages_dimensions(self):
        rng = np.random.default_rng(2)
        history = rng.uniform(size=(200, 4))
        same = rng.uniform(size=(200, 4))
        shifted = same.copy()
        shifted[:, 0] = shifted[:, 0] * 0.05  # collapse one dimension
        assert workload_divergence(shifted, history) > workload_divergence(same, history)

    def test_workload_divergence_width_mismatch(self):
        with pytest.raises(ReproError):
            workload_divergence(np.ones((3, 2)), np.ones((3, 5)))

    @settings(max_examples=25, deadline=None)
    @given(
        arrays(np.float64, 30, elements=st.floats(0, 1)),
        arrays(np.float64, 30, elements=st.floats(0, 1)),
    )
    def test_bounded_and_symmetric(self, a, b):
        d_ab = js_divergence_1d(a, b)
        d_ba = js_divergence_1d(b, a)
        assert 0.0 <= d_ab <= 1.0 + 1e-9
        assert d_ab == pytest.approx(d_ba, abs=1e-9)


class TestReport:
    def test_render_alignment(self):
        text = render_table(["name", "value"], [["a", 1.0], ["bb", 22.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_value_ranges(self):
        assert format_value(None) == "-"
        assert format_value("x") == "x"
        assert format_value(0) == "0"
        assert format_value(123456) == "1.23e+05"
        assert format_value(123.4) == "123.4"
        assert format_value(1.23456) == "1.235"
        assert format_value(0.012) == "0.0120"
