"""Shared fixtures for ops tests: a small serving stack to actuate on."""

from types import SimpleNamespace

import pytest

from repro.ce import DeployedEstimator, TrainConfig, create_model, train_model
from repro.datasets import load_dataset
from repro.db import Executor
from repro.serve.cache import EstimateCache
from repro.serve.retrain import RetrainLoop
from repro.workload import QueryEncoder, WorkloadGenerator


@pytest.fixture(scope="session")
def ops_world():
    """One trained smoke-scale model plus held-out workloads."""
    db = load_dataset("dmv", scale="smoke", seed=0)
    executor = Executor(db)
    generator = WorkloadGenerator(db, executor, seed=3)
    train = generator.generate(60)
    validation = generator.generate(12)
    encoder = QueryEncoder(db.schema)
    model = create_model("fcn", encoder, hidden_dim=12, seed=0)
    train_model(model, train, TrainConfig(epochs=15, seed=0))
    return SimpleNamespace(
        db=db,
        executor=executor,
        generator=generator,
        train=train,
        validation=validation,
        encoder=encoder,
        model=model,
        clean_state=model.state_dict(),
    )


@pytest.fixture()
def stack(ops_world):
    """A fresh deployment + retrain loop + cache over clean parameters."""
    ops_world.model.load_state_dict(ops_world.clean_state)
    deployed = DeployedEstimator(
        ops_world.model, ops_world.executor, update_steps=3
    )
    retrain = RetrainLoop(deployed, retrain_every=4)
    cache = EstimateCache(capacity=64)
    return SimpleNamespace(deployed=deployed, retrain=retrain, cache=cache)


class FakeRouter:
    """The two-method router surface :class:`ServePlant` polls."""

    def __init__(self, unreachable=(1,), workers=(0, 1)):
        self.stats = {
            wid: ({"unreachable": True} if wid in unreachable else {"served": 3})
            for wid in workers
        }
        self.quarantined: list[int] = []

    def worker_stats(self):
        return {wid: dict(snapshot) for wid, snapshot in self.stats.items()}

    def quarantine(self, wid):
        self.quarantined.append(wid)
        self.stats.pop(wid)
        return {"worker": wid, "requeued": 2}
