"""OpsController: the closed loop from telemetry to guarded repair."""

import numpy as np
import pytest

from repro.ops.actions import ServePlant
from repro.ops.loop import CANARY_METRIC, DEFAULT_POLICY, OpsController
from repro.ops.tsdb import OpsError
from repro.serve.retrain import RetrainEvent
from repro.serve.stats import ServeStats
from repro.store import ArtifactStore
from tests.ops.conftest import FakeRouter


def make_controller(stack, ops_world, router=None, run=None, **kwargs):
    plant = ServePlant(
        stack.deployed,
        stack.retrain,
        cache=stack.cache,
        router=router,
        run=run,
        validation=ops_world.validation,
        guard_factor=1.5,
    )
    kwargs.setdefault("cooldown_ticks", 1)
    return OpsController(plant, **kwargs)


def fake_promotion(stack):
    stack.retrain.events.append(
        RetrainEvent(len(stack.retrain.events), 4, 0, {}, True, False)
    )


def settle(controller, qerror=10.0, ticks=2, start=0.0):
    """Feed calm canary points so the clean model gets marked good."""
    for i in range(ticks):
        controller.observe_canary(qerror, at=start + i)
        controller.tick(at=start + i)
    return start + ticks


class TestValidation:
    def test_constructor_rejects_bad_knobs(self, stack, ops_world):
        with pytest.raises(OpsError, match="cooldown"):
            make_controller(stack, ops_world, cooldown_ticks=-1)
        with pytest.raises(OpsError, match="mark_factor"):
            make_controller(stack, ops_world, mark_factor=1.0)

    def test_policy_causes_must_be_known_and_non_empty(self, stack, ops_world):
        with pytest.raises(OpsError, match="unknown cause"):
            make_controller(
                stack, ops_world, policy={"gremlins": ("advisory",)}
            )
        with pytest.raises(OpsError, match="at least one action"):
            make_controller(stack, ops_world, policy={"poisoning": ()})

    def test_default_policy_covers_every_cause_it_names(self, stack, ops_world):
        controller = make_controller(stack, ops_world)
        for names in DEFAULT_POLICY.values():
            for name in names:
                assert name in controller.actions


class TestHealthyTicks:
    def test_quiet_ticks_mark_the_model_known_good(self, stack, ops_world):
        controller = make_controller(stack, ops_world)
        settle(controller, ticks=3)
        assert controller.plant.marks == 3
        assert all(t.marked_good for t in controller.state.ticks)
        assert controller.state.incidents == 0

    def test_canary_drift_outside_the_band_blocks_marking(
        self, stack, ops_world
    ):
        controller = make_controller(stack, ops_world, mark_factor=1.1)
        at = settle(controller, ticks=3)
        # 11.5 is quiet for every detector (spike needs >12.5, cusum's
        # excursion stays under its threshold for one step, forecast is
        # floored at 1.0) but sits outside the 1.1x mark envelope.
        controller.observe_canary(11.5, at=at)
        tick = controller.tick(at=at)
        assert tick.alarms == ()
        assert not tick.marked_good
        assert controller.plant.marks == 3
        assert controller.state.canary_baseline == 10.0


class TestPoisoningIncident:
    def test_detect_diagnose_rollback_and_guard(self, stack, ops_world):
        controller = make_controller(stack, ops_world)
        at = settle(controller)
        clean = stack.deployed.inspect_model().full_state_dict()
        fake_promotion(stack)
        # The "promoted" model serves garbage: poison the parameters and
        # let the canary see it.
        model = stack.deployed.inspect_model()
        state = model.full_state_dict()
        model.load_full_state_dict({
            key: value + 1.0
            if np.issubdtype(value.dtype, np.floating) else value
            for key, value in state.items()
        })
        controller.observe_canary(40.0, at=at)
        tick = controller.tick(at=at)

        assert len(tick.alarms) >= 1
        assert tick.alarms[0].metric == CANARY_METRIC
        assert tick.diagnosis.cause == "poisoning"
        assert [r.action for r in tick.results] == [
            "rollback", "guarded_retrain",
        ]
        assert all(r.ok for r in tick.results)
        # The rollback restored the marked parameters bitwise.
        restored = stack.deployed.inspect_model().full_state_dict()
        assert all(
            np.array_equal(clean[key], restored[key]) for key in clean
        )
        assert stack.cache.invalidations >= 1
        # The guard is armed for every later update.
        assert stack.retrain.guard is not None
        assert stack.retrain.guard in stack.deployed.gates

    def test_one_incident_means_one_repair_then_cooldown(
        self, stack, ops_world
    ):
        controller = make_controller(stack, ops_world, cooldown_ticks=1)
        at = settle(controller)
        fake_promotion(stack)
        controller.observe_canary(40.0, at=at)
        assert controller.tick(at=at).results != ()
        # Same bad canary again: the loop is cooling, not re-firing.
        controller.observe_canary(40.0, at=at + 1)
        second = controller.tick(at=at + 1)
        assert second.cooling and second.results == ()
        assert controller.state.incidents == 1
        assert controller.state.cooldown == 0


class TestOtherCauses:
    def test_dead_shard_quarantines_and_recovers(self, stack, ops_world):
        router = FakeRouter(unreachable=(1,), workers=(0, 1))
        controller = make_controller(stack, ops_world, router=router)
        controller.observe_canary(10.0, at=0.0)
        tick = controller.tick(at=0.0)
        assert tick.diagnosis.cause == "dead_shard"
        assert [r.action for r in tick.results] == ["quarantine"]
        assert tick.results[0].ok and router.quarantined == [1]
        assert not tick.marked_good
        controller.tick(at=1.0)  # cooldown
        # Healthy again: the survivors' plant gets blessed.
        controller.observe_canary(10.0, at=2.0)
        assert controller.tick(at=2.0).marked_good

    def test_cache_miss_storm_stays_advisory(self, stack, ops_world):
        controller = make_controller(stack, ops_world)
        for t, rate in enumerate([0.9, 0.9, 0.2]):
            controller.tsdb.ingest("serve.cache_hit_rate", rate, at=float(t))
        tick = controller.tick(at=3.0)
        assert tick.diagnosis.cause == "cache_miss_storm"
        assert [r.action for r in tick.results] == ["advisory"]
        # Advisory actions change nothing, so no cooldown is spent.
        assert controller.state.cooldown == 0
        assert not controller.tick(at=4.0).cooling


class TestLineageAndReport:
    def test_incident_lands_in_the_run_manifest(
        self, stack, ops_world, tmp_path
    ):
        store = ArtifactStore(tmp_path / "store")
        run = store.create_run("ops-test", "run-loop", params={}, seed=0)
        controller = make_controller(stack, ops_world, run=run)
        at = settle(controller)
        fake_promotion(stack)
        controller.observe_canary(40.0, at=at)
        tick = controller.tick(at=at)
        assert len(run.events("ops_alarm")) == len(tick.alarms)
        actions = run.events("ops_action")
        assert [e["action"] for e in actions] == [
            "rollback", "guarded_retrain",
        ]
        assert all(e["cause"] == "poisoning" for e in actions)

    def test_as_dict_reports_the_whole_tick_log(self, stack, ops_world):
        controller = make_controller(stack, ops_world)
        settle(controller, ticks=2)
        payload = controller.as_dict()
        assert len(payload["ticks"]) == 2
        assert payload["incidents"] == 0
        assert payload["marks"] == 2
        assert payload["canary_baseline"] == 10.0
        assert [CANARY_METRIC, "spike"] in payload["wiring"]
