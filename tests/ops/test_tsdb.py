"""TimeSeriesDB: ring retention, windows, the ServeStats ingester."""

import pytest

from repro.ops.tsdb import STATS_METRICS, MetricSeries, OpsError, TimeSeriesDB
from repro.serve.stats import ServeStats
from repro.utils.clock import ManualClock, use_clock


class TestMetricSeries:
    def test_retention_must_be_positive(self):
        with pytest.raises(OpsError, match="retention"):
            MetricSeries("x", retention=0)

    def test_ring_buffer_drops_the_oldest(self):
        series = MetricSeries("x", retention=3)
        for t in range(5):
            series.append(float(t), float(t * 10))
        assert len(series) == 3
        assert series.values() == [20.0, 30.0, 40.0]
        assert series.points()[0] == (2.0, 20.0)

    def test_time_must_not_go_backwards(self):
        series = MetricSeries("x")
        series.append(5.0, 1.0)
        series.append(5.0, 2.0)  # equal timestamps are fine
        with pytest.raises(OpsError, match="back in time"):
            series.append(3.0, 3.0)

    def test_latest_and_windows(self):
        series = MetricSeries("x")
        for t in range(5):
            series.append(float(t), float(t))
        assert series.latest() == (4.0, 4.0)
        assert series.window(1.0, 3.0) == [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
        assert series.window_sum(1.0, 3.0) == 6.0
        assert series.window_mean(1.0, 3.0) == 2.0
        assert series.window_mean(10.0, 20.0) is None

    def test_empty_series(self):
        series = MetricSeries("x")
        assert series.latest() is None
        assert series.values() == []


class TestTimeSeriesDB:
    def test_streams_appear_on_first_use_and_names_sort(self):
        tsdb = TimeSeriesDB()
        tsdb.ingest("b.metric", 1.0, at=0.0)
        tsdb.ingest("a.metric", 2.0, at=0.0)
        assert tsdb.names() == ["a.metric", "b.metric"]
        assert tsdb.latest("a.metric") == 2.0
        assert tsdb.latest("never.seen") is None
        assert tsdb.ingested_points == 2

    def test_ingest_reads_the_ambient_clock_when_at_is_omitted(self):
        clock = ManualClock()
        with use_clock(clock):
            tsdb = TimeSeriesDB()
            clock.set(7.5)
            tsdb.ingest("x", 1.0)
        assert tsdb.series("x").points() == [(7.5, 1.0)]

    def test_window_queries_route_to_the_series(self):
        tsdb = TimeSeriesDB()
        for t in range(4):
            tsdb.ingest("x", float(t), at=float(t))
        assert tsdb.window("x", 1.0, 2.0) == [(1.0, 1.0), (2.0, 2.0)]

    def test_as_dict_is_json_ready(self):
        tsdb = TimeSeriesDB()
        tsdb.ingest("x", 1.5, at=0.0)
        assert tsdb.as_dict() == {"x": [[0.0, 1.5]]}


class TestStatsIngester:
    def test_first_snapshot_seeds_then_deltas_per_interval(self):
        stats = ServeStats()
        tsdb = TimeSeriesDB()
        for _ in range(4):
            stats.record_submitted()
        stats.record_cache(3, 1)
        for _ in range(3):
            stats.record_completed(0.002)
        stats.record_shed()
        first = tsdb.ingest_stats(stats.to_json(), at=0.0)
        assert set(first) == set(STATS_METRICS)
        assert first["serve.completed"] == 3.0
        assert first["serve.shed_rate"] == 0.25
        assert first["serve.cache_hit_rate"] == 0.75
        assert first["serve.promotions"] == 0.0

        for _ in range(2):
            stats.record_submitted()
        stats.record_completed(0.002)
        stats.record_retrain(promoted=True, rolled_back=False, rejected=0)
        second = tsdb.ingest_stats(stats.to_json(), at=1.0)
        assert second["serve.completed"] == 1.0
        assert second["serve.promotions"] == 1.0
        assert second["serve.shed_rate"] == 0.0
        assert tsdb.ingested_snapshots == 2
        # Both intervals landed as points on each derived stream.
        assert len(tsdb.series("serve.completed")) == 2

    def test_quiet_interval_yields_zero_rates_not_nan(self):
        stats = ServeStats()
        tsdb = TimeSeriesDB()
        tsdb.ingest_stats(stats.to_json(), at=0.0)
        values = tsdb.ingest_stats(stats.to_json(), at=1.0)
        assert values["serve.shed_rate"] == 0.0
        assert values["serve.cache_hit_rate"] == 0.0

    def test_sources_keep_independent_delta_baselines(self):
        stats = ServeStats()
        stats.record_submitted()
        stats.record_completed(0.001)
        snapshot = stats.to_json()
        tsdb = TimeSeriesDB()
        a = tsdb.ingest_stats(snapshot, at=0.0, source="worker-a")
        b = tsdb.ingest_stats(snapshot, at=0.0, source="worker-b")
        # worker-b's first snapshot measures from zero, not from worker-a.
        assert a["serve.completed"] == b["serve.completed"] == 1.0

    def test_wrong_schema_version_fails_loudly(self):
        stats = ServeStats()
        snapshot = stats.to_json()
        snapshot["schema_version"] = 999
        with pytest.raises(OpsError, match="schema_version"):
            TimeSeriesDB().ingest_stats(snapshot)
        with pytest.raises(OpsError, match="schema_version"):
            TimeSeriesDB().ingest_stats({"submitted": 1})
