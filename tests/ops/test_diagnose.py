"""Root-cause classifier: the rule table, its priority order, history."""

import pytest

from repro.ops.detect import Alarm
from repro.ops.diagnose import CAUSES, RootCauseClassifier
from repro.ops.tsdb import OpsError


def alarm(metric, detector="spike", at=1.0):
    return Alarm(
        metric=metric, detector=detector, at=at, value=1.0, score=2.0,
        severity="critical", detail="test",
    )


class TestRuleTable:
    def test_quiet_sweep_yields_no_diagnosis(self):
        classifier = RootCauseClassifier()
        assert classifier.classify([]) is None
        assert classifier.history == []

    def test_dead_shard_wins_even_over_quality_evidence(self):
        classifier = RootCauseClassifier()
        diagnosis = classifier.classify(
            [alarm("serve.canary_qerror")],
            promotions_since_last=2,
            unreachable_workers=1,
        )
        assert diagnosis.cause == "dead_shard"
        assert diagnosis.confidence == 1.0
        assert "1 shard worker" in diagnosis.detail

    def test_dead_shard_needs_no_alarms_at_all(self):
        diagnosis = RootCauseClassifier().classify([], unreachable_workers=2)
        assert diagnosis.cause == "dead_shard"

    def test_quality_alarm_after_a_promotion_is_poisoning(self):
        diagnosis = RootCauseClassifier().classify(
            [alarm("serve.canary_qerror", "spike"),
             alarm("serve.canary_qerror", "cusum"),
             alarm("serve.p99_latency")],
            promotions_since_last=1,
        )
        assert diagnosis.cause == "poisoning"
        assert "cusum+spike" in diagnosis.detail  # detectors, sorted
        # Only the quality evidence is attached, not the latency noise.
        assert all("qerror" in a.metric for a in diagnosis.alarms)

    def test_quality_alarm_without_promotion_is_drift(self):
        diagnosis = RootCauseClassifier().classify(
            [alarm("serve.canary_qerror")], promotions_since_last=0
        )
        assert diagnosis.cause == "model_drift"

    def test_traffic_pressure_without_quality_is_a_cache_miss_storm(self):
        diagnosis = RootCauseClassifier().classify(
            [alarm("serve.cache_hit_rate"), alarm("serve.shed_rate")]
        )
        assert diagnosis.cause == "cache_miss_storm"
        assert "serve.cache_hit_rate" in diagnosis.detail

    def test_unmatched_alarms_fall_through_to_unknown(self):
        diagnosis = RootCauseClassifier().classify([alarm("serve.completed")])
        assert diagnosis.cause == "unknown"
        assert diagnosis.confidence == 0.25

    def test_every_emitted_cause_is_registered(self):
        assert set(CAUSES) == {
            "dead_shard", "poisoning", "model_drift",
            "cache_miss_storm", "unknown",
        }


class TestThresholdsAndHistory:
    def test_min_quality_alarms_gates_the_quality_causes(self):
        classifier = RootCauseClassifier(min_quality_alarms=2)
        # One quality alarm is below the bar; with no cache/pressure
        # evidence either, the sweep is unexplained.
        diagnosis = classifier.classify(
            [alarm("serve.canary_qerror")], promotions_since_last=1
        )
        assert diagnosis.cause == "unknown"

    def test_min_quality_alarms_must_be_positive(self):
        with pytest.raises(OpsError, match="min_quality_alarms"):
            RootCauseClassifier(min_quality_alarms=0)

    def test_history_accumulates_and_as_dict_round_trips(self):
        classifier = RootCauseClassifier()
        classifier.classify([alarm("serve.canary_qerror")])
        classifier.classify([alarm("serve.cache_hit_rate")])
        assert [d.cause for d in classifier.history] == [
            "model_drift", "cache_miss_storm",
        ]
        payload = classifier.history[0].as_dict()
        assert payload["cause"] == "model_drift"
        assert payload["alarms"][0]["metric"] == "serve.canary_qerror"
