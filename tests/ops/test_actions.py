"""ServePlant and the repair verbs: rollback, guard, quarantine, record."""

import numpy as np
import pytest

from repro.ops.actions import (
    AdvisoryAction,
    GuardedRetrainAction,
    QuarantineAction,
    RollbackAction,
    ServePlant,
)
from repro.ops.detect import Alarm
from repro.ops.diagnose import Diagnosis
from repro.ops.tsdb import OpsError
from repro.serve.retrain import RetrainEvent
from repro.serve.stats import ServeStats
from repro.store import ArtifactStore
from tests.ops.conftest import FakeRouter


def make_plant(stack, **kwargs):
    kwargs.setdefault("cache", stack.cache)
    return ServePlant(stack.deployed, stack.retrain, **kwargs)


def diagnosis(cause="poisoning"):
    return Diagnosis(
        cause=cause,
        confidence=0.75,
        detail="test incident",
        alarms=(
            Alarm(
                metric="serve.canary_qerror", detector="spike", at=1.0,
                value=30.0, score=3.0, severity="critical", detail="test",
            ),
        ),
    )


def perturb(deployed):
    """Knock the serving parameters visibly off their current values."""
    model = deployed.inspect_model()
    state = model.full_state_dict()
    bumped = {
        key: value + 1.0 if np.issubdtype(value.dtype, np.floating) else value
        for key, value in state.items()
    }
    model.load_full_state_dict(bumped)


def states_equal(a, b):
    return set(a) == set(b) and all(
        np.array_equal(a[key], b[key]) for key in a
    )


class TestPlantSignals:
    def test_guard_factor_must_exceed_one(self, stack):
        with pytest.raises(OpsError, match="guard_factor"):
            make_plant(stack, guard_factor=1.0)

    def test_promotions_total_prefers_stats_counters(self, stack):
        stats = ServeStats()
        stats.record_retrain(promoted=True, rolled_back=False, rejected=0)
        stats.record_retrain(promoted=True, rolled_back=False, rejected=0)
        stack.retrain.stats = stats
        assert make_plant(stack).promotions_total() == 2

    def test_promotions_total_falls_back_to_the_event_log(self, stack):
        stack.retrain.events.append(RetrainEvent(0, 4, 0, {}, True, False))
        stack.retrain.events.append(RetrainEvent(1, 4, 0, {}, False, True))
        assert make_plant(stack).promotions_total() == 1

    def test_unreachable_ids_without_a_router_is_empty(self, stack):
        assert make_plant(stack).unreachable_ids() == ()

    def test_unreachable_ids_reads_router_stats(self, stack):
        plant = make_plant(stack, router=FakeRouter(unreachable=(1,)))
        assert plant.unreachable_ids() == (1,)


class TestMarkAndRestore:
    def test_in_memory_mark_restores_bitwise_and_flushes_the_cache(self, stack):
        plant = make_plant(stack)
        clean = stack.deployed.inspect_model().full_state_dict()
        assert plant.mark_good() is None  # no store: in-memory copy
        perturb(stack.deployed)
        assert not states_equal(
            clean, stack.deployed.inspect_model().full_state_dict()
        )
        plant.restore_good()
        assert states_equal(
            clean, stack.deployed.inspect_model().full_state_dict()
        )
        assert stack.cache.invalidations == 1
        assert plant.marks == 1 and plant.restores == 1

    def test_restore_before_any_mark_refuses(self, stack):
        with pytest.raises(OpsError, match="known-good"):
            make_plant(stack).restore_good()

    def test_store_backed_mark_content_addresses_the_checkpoint(
        self, stack, tmp_path
    ):
        store = ArtifactStore(tmp_path / "store")
        run = store.create_run("ops-test", "run-mark", params={}, seed=0)
        plant = make_plant(stack, run=run)
        digest = plant.mark_good()
        assert digest is not None
        # Marking an unchanged model dedups to the same blob.
        assert plant.mark_good() == digest
        clean = stack.deployed.inspect_model().full_state_dict()
        perturb(stack.deployed)
        assert plant.restore_good() == digest
        assert states_equal(
            clean, stack.deployed.inspect_model().full_state_dict()
        )


class TestRollbackAction:
    def test_reports_failure_when_nothing_was_marked(self, stack):
        result = RollbackAction().apply(make_plant(stack), diagnosis())
        assert result.action == "rollback" and not result.ok

    def test_restores_and_names_the_checkpoint(self, stack):
        plant = make_plant(stack)
        plant.mark_good()
        perturb(stack.deployed)
        result = RollbackAction().apply(plant, diagnosis())
        assert result.ok
        assert "known-good" in result.detail
        assert result.data["digest"] is None  # in-memory restore


class TestGuardedRetrainAction:
    def test_needs_a_validation_workload(self, stack):
        result = GuardedRetrainAction().apply(make_plant(stack), diagnosis())
        assert not result.ok and "validation" in result.detail

    def test_installs_a_calibrated_guard_into_loop_and_gates(
        self, stack, ops_world
    ):
        plant = make_plant(stack, validation=ops_world.validation,
                           guard_factor=1.5)
        result = GuardedRetrainAction().apply(plant, diagnosis())
        assert result.ok
        guard = stack.retrain.guard
        assert guard is not None and guard in stack.deployed.gates
        assert guard.factor == 1.5
        assert guard.baseline_qerror is not None
        assert result.data["guard_factor"] == 1.5
        assert result.data["flushed"] is False  # nothing buffered

    def test_reinstalling_only_tightens_the_envelope(self, stack, ops_world):
        loose = make_plant(stack, validation=ops_world.validation,
                           guard_factor=1.5)
        GuardedRetrainAction().apply(loose, diagnosis())
        tight = make_plant(stack, validation=ops_world.validation,
                           guard_factor=1.2)
        GuardedRetrainAction().apply(tight, diagnosis())
        assert stack.retrain.guard.factor == 1.2
        # One guard instance, installed once.
        assert stack.deployed.gates.count(stack.retrain.guard) == 1

    def test_flushes_buffered_workload_through_the_guard(
        self, stack, ops_world
    ):
        plant = make_plant(stack, validation=ops_world.validation)
        for query in ops_world.train.queries[:4]:
            stack.retrain.observe(query)
        result = GuardedRetrainAction().apply(plant, diagnosis())
        assert result.ok and result.data["flushed"] is True
        assert len(stack.retrain.events) == 1


class TestQuarantineAction:
    def test_no_router_or_no_dead_workers_fails_closed(self, stack):
        result = QuarantineAction().apply(make_plant(stack), diagnosis("dead_shard"))
        assert not result.ok

    def test_drains_every_unreachable_worker(self, stack):
        router = FakeRouter(unreachable=(1,), workers=(0, 1, 2))
        plant = make_plant(stack, router=router)
        result = QuarantineAction().apply(plant, diagnosis("dead_shard"))
        assert result.ok
        assert router.quarantined == [1]
        assert result.data == {"workers": [1], "requeued": 2}
        # The shard is gone: a second pass has nothing left to drain.
        assert not QuarantineAction().apply(plant, diagnosis("dead_shard")).ok

    def test_quarantine_without_a_router_raises(self, stack):
        with pytest.raises(OpsError, match="router"):
            make_plant(stack).quarantine_workers((0,))


class TestAdvisoryAndLineage:
    def test_advisory_always_succeeds_and_names_the_cause(self, stack):
        result = AdvisoryAction(note="watching").apply(
            make_plant(stack), diagnosis("cache_miss_storm")
        )
        assert result.ok and "cache_miss_storm" in result.detail

    def test_record_commits_alarms_and_actions_into_the_run(
        self, stack, tmp_path
    ):
        store = ArtifactStore(tmp_path / "store")
        run = store.create_run("ops-test", "run-lineage", params={}, seed=0)
        plant = make_plant(stack, run=run)
        incident = diagnosis()
        result = AdvisoryAction().apply(plant, incident)
        plant.record(incident, (result,))
        alarms = run.events("ops_alarm")
        actions = run.events("ops_action")
        assert len(alarms) == 1
        assert alarms[0]["metric"] == "serve.canary_qerror"
        assert len(actions) == 1
        assert actions[0]["cause"] == "poisoning"
        assert actions[0]["action"] == "advisory"

    def test_record_without_a_run_is_a_no_op(self, stack):
        plant = make_plant(stack)
        plant.record(diagnosis(), ())  # must not raise
