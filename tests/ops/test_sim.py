"""ops-sim end to end: report shape, digest stability, shared traffic."""

import pytest

from repro.ops.sim import OpsSimConfig, format_ops_report, run_ops_sim

#: dmv/fcn shares the process-wide scenario cache with the attack tests;
#: "random" poison skips generator training. This config exercises the
#: machinery (two arms + stability replay), not the chaos acceptance
#: thresholds — those run at the tuned mscn defaults in CI's
#: ``ops-sim --chaos`` gate.
FAST_KWARGS = dict(
    dataset="dmv",
    model_type="fcn",
    rounds=2,
    chaos_round=1,
    requests_per_round=32,
    attack_method="random",
)


@pytest.fixture(scope="session")
def fast_report(tmp_path_factory):
    config = OpsSimConfig(
        **FAST_KWARGS,
        store_root=str(tmp_path_factory.mktemp("ops-store")),
    )
    return run_ops_sim(config, stability=True)


class TestReportShape:
    def test_arms_and_trajectories(self, fast_report):
        assert fast_report["schema_version"] == 1
        assert set(fast_report["arms"]) == {"no_ops", "ops"}
        for arm in fast_report["arms"].values():
            assert len(arm["qerror_trajectory"]) == 2
            assert len(arm["canary_trajectory"]) == 2
            assert arm["baseline_qerror"] > 0
            assert arm["stats"]["schema_version"] == 1
        assert fast_report["arms"]["no_ops"]["controller"] is None
        assert fast_report["arms"]["ops"]["controller"] is not None

    def test_chaos_starts_exactly_at_the_chaos_round(self, fast_report):
        for arm in fast_report["arms"].values():
            flags = [r["chaos_active"] for r in arm["rounds"]]
            assert flags == [False, True]
            assert arm["rounds"][0]["attacker"] == 0
            assert arm["rounds"][1]["attacker"] > 0

    def test_both_arms_see_identical_traffic(self, fast_report):
        no_ops = fast_report["arms"]["no_ops"]["rounds"]
        ops = fast_report["arms"]["ops"]["rounds"]
        for a, b in zip(no_ops, ops):
            assert (a["benign"], a["attacker"]) == (b["benign"], b["attacker"])

    def test_verdict_block_is_complete(self, fast_report):
        verdict = fast_report["verdict"]
        assert set(verdict) >= {
            "detected", "lineage_recorded", "recovery_ratio", "recovered",
            "noops_ratio", "noops_degraded", "digest_stable", "ok",
        }

    def test_lineage_counters_are_reported_per_arm(self, fast_report):
        ops = fast_report["arms"]["ops"]["lineage"]
        assert set(ops) == {"ops_alarm", "ops_action", "promotion", "rollback"}
        # The blind arm runs no controller, so no ops events can exist.
        blind = fast_report["arms"]["no_ops"]["lineage"]
        assert blind["ops_alarm"] == 0 and blind["ops_action"] == 0

    def test_format_renders_both_arms_and_the_verdict(self, fast_report):
        text = format_ops_report(fast_report)
        assert "no_ops" in text and "chaos verdict" in text
        assert "ops-sim" in text


class TestDeterminism:
    def test_ops_arm_digest_is_stable_across_replays(self, fast_report):
        assert fast_report["repeat_digest"] is not None
        assert (
            fast_report["repeat_digest"]
            == fast_report["arms"]["ops"]["digest"]
        )
        assert fast_report["verdict"]["digest_stable"]

    def test_the_two_arms_digest_differently(self, fast_report):
        assert (
            fast_report["arms"]["no_ops"]["digest"]
            != fast_report["arms"]["ops"]["digest"]
        )
