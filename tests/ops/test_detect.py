"""Detectors: firing semantics, bank sweeps, the determinism contract."""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.ops.detect import (
    CusumDetector,
    DetectorBank,
    ForecastResidualDetector,
    SpikeDetector,
    default_bank,
)
from repro.ops.tsdb import OpsError, TimeSeriesDB
from repro.utils.rng import derive_rng


class TestSpikeDetector:
    def test_parameter_validation(self):
        with pytest.raises(OpsError, match="ratio"):
            SpikeDetector(ratio=1.0)
        with pytest.raises(OpsError, match="direction"):
            SpikeDetector(direction="sideways")

    def test_fires_on_an_upward_jump_against_the_trailing_median(self):
        detector = SpikeDetector(ratio=1.5, min_points=2)
        assert detector.update(0.0, 10.0) is None
        assert detector.update(1.0, 10.0) is None
        alarm = detector.update(2.0, 16.0)
        assert alarm is not None
        assert alarm.detector == "spike"
        assert alarm.at == 2.0 and alarm.value == 16.0
        assert alarm.score == pytest.approx(1.6)

    def test_floor_suppresses_jumps_from_tiny_baselines(self):
        detector = SpikeDetector(ratio=1.5, min_points=2, floor=1.0)
        detector.update(0.0, 1e-6)
        detector.update(1.0, 1e-6)
        assert detector.update(2.0, 1e-3) is None

    def test_downward_direction_watches_collapses(self):
        detector = SpikeDetector(ratio=2.0, min_points=2, direction="down")
        detector.update(0.0, 0.9)
        detector.update(1.0, 0.9)
        alarm = detector.update(2.0, 0.2)
        assert alarm is not None and "fell" in alarm.detail

    def test_reset_forgets_the_trail(self):
        detector = SpikeDetector(ratio=1.5, min_points=2)
        detector.update(0.0, 10.0)
        detector.update(1.0, 10.0)
        detector.reset()
        assert detector.update(2.0, 100.0) is None  # warming up again


class TestCusumDetector:
    def test_parameter_validation(self):
        with pytest.raises(OpsError, match="threshold"):
            CusumDetector(threshold=0.0)
        with pytest.raises(OpsError, match="calibration"):
            CusumDetector(calibrate=0)

    def test_calibrates_then_accumulates_a_level_shift(self):
        detector = CusumDetector(slack=0.05, threshold=0.25, calibrate=3)
        for t in range(3):
            assert detector.update(float(t), 10.0) is None
        assert detector.reference == pytest.approx(10.0)
        # A sustained +12% shift no single-point spike rule would call:
        # each step adds 0.12 - 0.05 = 0.07 to the sum.
        alarms = [detector.update(3.0 + t, 11.2) for t in range(4)]
        fired = [a for a in alarms if a is not None]
        assert len(fired) == 1
        assert fired[0].detector == "cusum"
        # The sum re-arms after firing.
        assert detector.update(10.0, 10.0) is None

    def test_down_direction_mirrors_the_excursion(self):
        detector = CusumDetector(
            slack=0.05, threshold=0.2, calibrate=2, direction="down"
        )
        detector.update(0.0, 10.0)
        detector.update(1.0, 10.0)
        alarms = [detector.update(2.0 + t, 8.5) for t in range(3)]
        assert any(a is not None for a in alarms)


class TestForecastResidualDetector:
    def test_parameter_validation(self):
        with pytest.raises(OpsError, match="alpha"):
            ForecastResidualDetector(alpha=0.0)
        with pytest.raises(OpsError, match="ratio"):
            ForecastResidualDetector(ratio=1.0)

    def test_fires_once_a_residual_leaves_the_learned_scale(self):
        detector = ForecastResidualDetector(alpha=0.5, ratio=3.0, min_points=3)
        values = [10.0, 10.1, 9.9, 10.0, 10.1]
        assert all(
            detector.update(float(t), v) is None for t, v in enumerate(values)
        )
        alarm = detector.update(5.0, 30.0)
        assert alarm is not None
        assert alarm.detector == "forecast"
        assert "residual" in alarm.detail

    def test_warmup_points_never_alarm(self):
        detector = ForecastResidualDetector(min_points=4)
        assert detector.update(0.0, 10.0) is None
        assert detector.update(1.0, 50.0) is None


class TestDetectorBank:
    def test_sweep_feeds_only_never_seen_points(self):
        tsdb = TimeSeriesDB()
        bank = DetectorBank([("x", SpikeDetector(ratio=1.5, min_points=2))])
        for t, v in enumerate([10.0, 10.0, 20.0]):
            tsdb.ingest("x", v, at=float(t))
        first = bank.sweep(tsdb)
        assert len(first) == 1
        assert first[0].metric == "x"  # the bank stamps the stream name
        # Nothing new: the cursor prevents any replay (and re-alarm).
        assert bank.sweep(tsdb) == []
        assert bank.alarms == first

    def test_rearm_resets_detectors_but_keeps_cursors(self):
        tsdb = TimeSeriesDB()
        bank = DetectorBank([("x", SpikeDetector(ratio=1.5, min_points=2))])
        for t, v in enumerate([10.0, 10.0, 20.0]):
            tsdb.ingest("x", v, at=float(t))
        bank.sweep(tsdb)
        bank.rearm()
        # Old points are never replayed; the detector re-baselines on
        # whatever arrives next.
        tsdb.ingest("x", 100.0, at=3.0)
        assert bank.sweep(tsdb) == []  # spike trail is warming up again

    def test_default_bank_wiring_covers_quality_and_health_streams(self):
        bank = default_bank()
        wiring = bank.wiring()
        assert wiring.count(("serve.canary_qerror", "spike")) == 1
        assert ("serve.canary_qerror", "cusum") in wiring
        assert ("serve.canary_qerror", "forecast") in wiring
        assert ("serve.p99_latency", "spike") in wiring
        assert ("serve.shed_rate", "spike") in wiring
        assert ("serve.cache_hit_rate", "spike") in wiring


# A handcrafted stream that makes several detector families fire: a calm
# baseline, a sustained quality excursion, a recovery, then a late spike.
CANARY_STREAM = [10.0, 10.0, 10.05, 9.95, 10.0, 26.0, 27.5, 26.5, 10.2, 10.0, 31.0]
LATENCY_STREAM = [0.002] * 8 + [0.02, 0.002, 0.002]

DETERMINISM_SNIPPET = """
import hashlib, json
from repro.ops.detect import default_bank
from repro.ops.tsdb import TimeSeriesDB

canary = {canary!r}
latency = {latency!r}
tsdb = TimeSeriesDB()
bank = default_bank()
for t, (q, lat) in enumerate(zip(canary, latency)):
    tsdb.ingest("serve.canary_qerror", q, at=float(t))
    tsdb.ingest("serve.p99_latency", lat, at=float(t))
    bank.sweep(tsdb)
payload = json.dumps([a.as_dict() for a in bank.alarms], sort_keys=True)
print(hashlib.sha256(payload.encode()).hexdigest())
"""


def _alarm_digest():
    tsdb = TimeSeriesDB()
    bank = default_bank()
    for t, (q, lat) in enumerate(zip(CANARY_STREAM, LATENCY_STREAM)):
        tsdb.ingest("serve.canary_qerror", q, at=float(t))
        tsdb.ingest("serve.p99_latency", lat, at=float(t))
        bank.sweep(tsdb)
    payload = json.dumps([a.as_dict() for a in bank.alarms], sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest(), bank.alarms


class TestDeterminism:
    def test_the_stream_actually_alarms(self):
        _, alarms = _alarm_digest()
        assert len(alarms) >= 2
        assert {a.detector for a in alarms} >= {"spike"}

    def test_incremental_and_batch_sweeps_agree(self):
        _, incremental = _alarm_digest()
        tsdb = TimeSeriesDB()
        bank = default_bank()
        for t, (q, lat) in enumerate(zip(CANARY_STREAM, LATENCY_STREAM)):
            tsdb.ingest("serve.canary_qerror", q, at=float(t))
            tsdb.ingest("serve.p99_latency", lat, at=float(t))
        batch = bank.sweep(tsdb)
        # A single batch sweep emits per wiring entry, an incremental
        # sweep per tick — same alarm *set*, possibly different order.
        def canonical(alarms):
            return sorted(
                json.dumps(a.as_dict(), sort_keys=True) for a in alarms
            )

        assert canonical(batch) == canonical(incremental)

    @pytest.mark.parametrize("hashseed", ["0", "4242"])
    def test_identical_streams_alarm_byte_identically_across_processes(
        self, hashseed
    ):
        expected, _ = _alarm_digest()
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env = {
            **os.environ,
            "PYTHONPATH": src_root,
            "PYTHONHASHSEED": hashseed,
        }
        script = DETERMINISM_SNIPPET.format(
            canary=CANARY_STREAM, latency=LATENCY_STREAM
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == expected


class TestFalsePositiveBounds:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_clean_traffic_never_alarms(self, seed):
        """Calm streams with realistic jitter stay silent for 200 ticks."""
        rng = derive_rng(seed)
        tsdb = TimeSeriesDB()
        bank = default_bank()
        for t in range(200):
            noise = rng.random(4)
            tsdb.ingest(
                "serve.canary_qerror", 10.0 * (1.0 + 0.02 * (noise[0] - 0.5)),
                at=float(t),
            )
            tsdb.ingest(
                "serve.p99_latency", 0.002 * (1.0 + 0.1 * (noise[1] - 0.5)),
                at=float(t),
            )
            tsdb.ingest("serve.shed_rate", 0.0, at=float(t))
            tsdb.ingest(
                "serve.cache_hit_rate", 0.8 + 0.05 * (noise[3] - 0.5),
                at=float(t),
            )
            bank.sweep(tsdb)
        assert bank.alarms == []
