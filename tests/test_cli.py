"""CLI smoke and contract tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_attack_defaults(self):
        args = build_parser().parse_args(["attack"])
        assert args.dataset == "dmv"
        assert args.method == "pace"
        assert not args.no_detector

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--dataset", "northwind"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "dmv" in out and "pace" in out and "smoke" in out

    def test_attack_random_end_to_end(self, capsys):
        code = main([
            "attack", "--dataset", "dmv", "--model", "fcn",
            "--method", "random", "--count", "8", "--scale", "smoke",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "degradation factor" in out
        assert "Q-error before/after random" in out

    def test_attack_pace_end_to_end(self, capsys):
        code = main([
            "attack", "--dataset", "dmv", "--model", "fcn",
            "--method", "pace", "--count", "12", "--scale", "smoke",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "poisoning queries:  12" in out
