"""CLI smoke and contract tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
        assert "required: command" in capsys.readouterr().err

    def test_attack_defaults(self):
        args = build_parser().parse_args(["attack"])
        assert args.dataset == "dmv"
        assert args.method == "pace"
        assert not args.no_detector

    def test_rejects_unknown_dataset(self, capsys):
        # argparse writes the usage/error text to stderr before exiting;
        # capture it so it doesn't pollute the pytest output, and pin the
        # message while we're at it.
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(["attack", "--dataset", "northwind"])
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'northwind'" in err


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "dmv" in out and "pace" in out and "smoke" in out

    def test_attack_random_end_to_end(self, capsys):
        code = main([
            "attack", "--dataset", "dmv", "--model", "fcn",
            "--method", "random", "--count", "8", "--scale", "smoke",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "degradation factor" in out
        assert "Q-error before/after random" in out

    def test_attack_pace_end_to_end(self, capsys):
        code = main([
            "attack", "--dataset", "dmv", "--model", "fcn",
            "--method", "pace", "--count", "12", "--scale", "smoke",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "poisoning queries:  12" in out


class TestAnalysisCommands:
    def test_lint_self_is_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_lint_reports_violations_with_nonzero_exit(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import numpy as np\n"
            "rng = np.random.default_rng(3)\n"
            "print('done')\n"
        )
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out and "R004" in out
        assert f"{bad}:2:7:" in out

    def test_lint_json_format(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text("print('x')\n")
        assert main(["lint", "--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "R004"
        assert payload[0]["line"] == 1

    def test_lint_select_restricts_rules(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("print('x')\n")
        assert main(["lint", "--select", "R001", str(bad)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_gradcheck_passes(self, capsys):
        assert main(["gradcheck"]) == 0
        out = capsys.readouterr().out
        assert "max relative error" in out
        assert "FAIL" not in out

    def test_lint_unknown_select_exits_2(self, capsys):
        assert main(["lint", "--select", "R999"]) == 2
        err = capsys.readouterr().err
        assert "lint: error:" in err
        assert "R999" in err

    def test_lint_flow_rule_select_points_at_analyze(self, capsys):
        assert main(["lint", "--select", "R007"]) == 2
        err = capsys.readouterr().err
        assert "pace-repro analyze" in err

    def test_lint_ignore_skips_rule(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("print('x')\n")
        assert main(["lint", "--ignore", "R004", str(bad)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_unknown_ignore_exits_2(self, capsys):
        assert main(["lint", "--ignore", "R999"]) == 2
        assert "R999" in capsys.readouterr().err

    def test_gradcheck_json_format(self, capsys):
        import json

        assert main(["gradcheck", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["cases"]
        assert {"name", "max_rel_error", "checked", "tolerance", "passed"} <= set(
            payload["cases"][0]
        )

    def test_analyze_repo_is_clean(self, capsys):
        # The acceptance gate: lint + whole-program flow + gradcheck + a
        # sanitized training smoke over the real package must all pass.
        import json

        assert main(["analyze", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert payload["gradcheck"]["passed"] is True
        assert payload["smoke"]["passed"] is True

    def test_analyze_flags_planted_violation(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text(
            "import numpy as np\n\n"
            "def sample():\n"
            "    return np.random.default_rng(0).normal(size=3)\n"
        )
        code = main([
            "analyze", str(tmp_path), "--skip-gradcheck", "--skip-smoke",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "R001" in out
        assert "analyze: FAIL" in out


class TestDurableRunCommands:
    @pytest.fixture()
    def store_dir(self, tmp_path):
        return str(tmp_path / "store")

    def grid(self, store_dir, *extra):
        return main([
            "grid", "--methods", "clean", "random", "--scale", "smoke",
            "--store", store_dir, *extra,
        ])

    def test_grid_runs_and_reports_cells(self, store_dir, capsys):
        assert self.grid(store_dir) == 0
        out = capsys.readouterr().out
        assert "dmv/fcn/clean" in out and "dmv/fcn/random" in out
        assert "report:" in out

    def test_existing_run_requires_resume_flag(self, store_dir, capsys):
        assert self.grid(store_dir) == 0
        from repro.utils.errors import StoreError

        with pytest.raises(StoreError, match="resume"):
            self.grid(store_dir)
        capsys.readouterr()
        assert self.grid(store_dir, "--resume") == 0
        assert "executed: 0" in capsys.readouterr().out

    def test_injected_crash_exits_3_then_runs_resume(self, store_dir, capsys):
        code = self.grid(store_dir, "--crash-at",
                         "step:cell:dmv/fcn/random:pre-commit")
        assert code == 3
        out = capsys.readouterr().out
        assert "crashed (injected)" in out
        assert "pace-repro runs resume" in out

        assert main(["runs", "list", "--store", store_dir]) == 0
        listing = capsys.readouterr().out
        assert "running" in listing
        run_id = listing.split(":")[0].strip()

        assert main(["runs", "resume", run_id, "--store", store_dir]) == 0
        resumed = capsys.readouterr().out
        assert "replayed" in resumed and "final artifact" in resumed

        assert main(["runs", "show", run_id, "--store", store_dir]) == 0
        shown = capsys.readouterr().out
        assert "[done] report" in shown
        assert "parent" in shown

        assert main(["runs", "gc", "--store", store_dir]) == 0
        assert "removed 0 objects" in capsys.readouterr().out
