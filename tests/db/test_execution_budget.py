"""Statement-timeout semantics: runaway joins abort cheaply everywhere."""

import numpy as np
import pytest

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    Executor,
    JoinEdge,
    Query,
    Table,
    TableSchema,
    hash_join_pairs,
)
from repro.utils.errors import ExecutionBudgetError
from repro.workload.workload import Workload


def explosive_db(rows=400):
    """Two tables joined many-to-many on a constant key: |join| = rows^2."""
    left_schema = TableSchema(
        "left_t", (Column("k", kind="key"), Column("a", low=0, high=1))
    )
    right_schema = TableSchema(
        "right_t", (Column("k", kind="key"), Column("b", low=0, high=1))
    )
    schema = DatabaseSchema(
        "boom", [left_schema, right_schema], [JoinEdge("left_t", "k", "right_t", "k")]
    )
    ones = np.zeros(rows, dtype=np.int64)
    rng = np.random.default_rng(0)
    left = Table(left_schema, {"k": ones, "a": rng.uniform(size=rows)})
    right = Table(right_schema, {"k": ones, "b": rng.uniform(size=rows)})
    return Database(schema, {"left_t": left, "right_t": right})


class TestBudget:
    def test_hash_join_pairs_aborts_before_materializing(self):
        keys = np.zeros(10_000, dtype=np.int64)
        with pytest.raises(ExecutionBudgetError):
            hash_join_pairs(keys, keys, max_pairs=1_000_000)

    def test_hash_join_pairs_unlimited_by_default(self):
        keys = np.zeros(100, dtype=np.int64)
        li, _ri = hash_join_pairs(keys, keys)
        assert li.size == 100 * 100

    def test_executor_raises_budget_error(self):
        db = explosive_db()
        ex = Executor(db, max_intermediate=10_000)
        q = Query.build(db.schema, ["left_t", "right_t"])
        with pytest.raises(ExecutionBudgetError):
            ex.count(q)

    def test_try_count_returns_none(self):
        db = explosive_db()
        ex = Executor(db, max_intermediate=10_000)
        q = Query.build(db.schema, ["left_t", "right_t"])
        assert ex.try_count(q) is None
        assert ex.try_count(Query.build(db.schema, ["left_t"])) == 400

    def test_workload_from_queries_drops_oversized(self):
        db = explosive_db()
        ex = Executor(db, max_intermediate=10_000)
        big = Query.build(db.schema, ["left_t", "right_t"])
        small = Query.build(db.schema, ["left_t"])
        wl = Workload.from_queries([big, small], ex)
        assert len(wl) == 1
        assert wl.queries[0].tables == frozenset({"left_t"})

    def test_deployed_estimator_survives_oversized_queries(self):
        from repro.ce import DeployedEstimator, create_model
        from repro.workload import QueryEncoder

        db = explosive_db()
        ex = Executor(db, max_intermediate=10_000)
        model = create_model("fcn", QueryEncoder(db.schema), hidden_dim=8, seed=0)
        model.calibrate_normalization(np.array([10.0, 400.0]))
        deployed = DeployedEstimator(model, ex, update_steps=2)
        big = Query.build(db.schema, ["left_t", "right_t"])
        small = Query.build(db.schema, ["left_t"])
        report = deployed.execute([big, small])
        assert report.executed == 2
        assert len(deployed.history) == 1  # only the small query trained
