"""Ground-truth execution vs a brute-force reference implementation."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    Executor,
    JoinEdge,
    Query,
    Table,
    TableSchema,
    hash_join_pairs,
)
from repro.utils.errors import ExecutionBudgetError, QueryError


def make_db(seed=0, users_rows=40, posts_rows=120):
    rng = np.random.default_rng(seed)
    users_schema = TableSchema(
        "users", (Column("id", kind="key"), Column("age", low=0, high=100))
    )
    posts_schema = TableSchema(
        "posts",
        (
            Column("id", kind="key"),
            Column("user_id", kind="key"),
            Column("score", low=0, high=50),
        ),
    )
    schema = DatabaseSchema(
        "mini", [users_schema, posts_schema], [JoinEdge("posts", "user_id", "users", "id")]
    )
    users = Table(
        users_schema,
        {
            "id": np.arange(users_rows),
            "age": rng.integers(0, 101, size=users_rows).astype(float),
        },
    )
    posts = Table(
        posts_schema,
        {
            "id": np.arange(posts_rows),
            "user_id": rng.integers(0, users_rows, size=posts_rows),
            "score": rng.integers(0, 51, size=posts_rows).astype(float),
        },
    )
    return Database(schema, {"users": users, "posts": posts})


def brute_force_count(db, query):
    """Nested-loop reference: iterate the cartesian product of the tables."""
    tables = sorted(query.tables)
    rows = {t: range(db.table(t).num_rows) for t in tables}
    edges = db.schema.join_edges_within(query.tables)
    count = 0
    for combo in itertools.product(*(rows[t] for t in tables)):
        assignment = dict(zip(tables, combo))
        ok = True
        for edge in edges:
            lv = db.table(edge.left_table).column(edge.left_column)[assignment[edge.left_table]]
            rv = db.table(edge.right_table).column(edge.right_column)[
                assignment[edge.right_table]
            ]
            if lv != rv:
                ok = False
                break
        if not ok:
            continue
        for (tbl, col), (lo, hi) in query.predicates.items():
            column = db.schema.table(tbl).column(col)
            value = db.table(tbl).column(col)[assignment[tbl]]
            if not (column.denormalize(lo) <= value <= column.denormalize(hi)):
                ok = False
                break
        if ok:
            count += 1
    return count


class TestHashJoinPairs:
    def test_basic_matches(self):
        li, ri = hash_join_pairs(np.array([1, 2, 2]), np.array([2, 3, 2]))
        pairs = sorted(zip(li.tolist(), ri.tolist()))
        assert pairs == [(1, 0), (1, 2), (2, 0), (2, 2)]

    def test_empty_inputs(self):
        li, ri = hash_join_pairs(np.array([]), np.array([1]))
        assert li.size == 0 and ri.size == 0

    def test_no_matches(self):
        li, ri = hash_join_pairs(np.array([1]), np.array([2]))
        assert li.size == 0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 5), min_size=0, max_size=15),
        st.lists(st.integers(0, 5), min_size=0, max_size=15),
    )
    def test_count_matches_bruteforce(self, left, right):
        li, _ri = hash_join_pairs(np.array(left), np.array(right))
        expected = sum(1 for a in left for b in right if a == b)
        assert li.size == expected


class TestExecutor:
    def setup_method(self):
        self.db = make_db()
        self.ex = Executor(self.db)

    def test_single_table_no_predicates(self):
        q = Query.build(self.db.schema, ["users"])
        assert self.ex.count(q) == 40

    def test_single_table_predicate(self):
        q = Query.build(self.db.schema, ["users"], {("users", "age"): (0.0, 0.5)})
        assert self.ex.count(q) == brute_force_count(self.db, q)

    def test_join_no_predicates_equals_child_rows(self):
        q = Query.build(self.db.schema, ["users", "posts"])
        # every post references an existing user
        assert self.ex.count(q) == 120

    def test_join_with_predicates_matches_bruteforce(self):
        q = Query.build(
            self.db.schema,
            ["users", "posts"],
            {("users", "age"): (0.2, 0.8), ("posts", "score"): (0.0, 0.4)},
        )
        assert self.ex.count(q) == brute_force_count(self.db, q)

    def test_impossible_predicate_is_zero(self):
        q = Query.build(self.db.schema, ["users"], {("users", "age"): (0.999, 1.0)})
        count = self.ex.count(q)
        assert count == brute_force_count(self.db, q)

    def test_memoization_counts_executions(self):
        q = Query.build(self.db.schema, ["users", "posts"])
        before = self.ex.executed_count
        self.ex.count(q)
        self.ex.count(q)
        assert self.ex.executed_count == before + 1

    def test_count_many_vectorizes(self):
        q1 = Query.build(self.db.schema, ["users"])
        q2 = Query.build(self.db.schema, ["posts"])
        np.testing.assert_array_equal(self.ex.count_many([q1, q2]), [40.0, 120.0])

    def test_selectivity(self):
        sel = self.ex.selectivity("users", {("users", "age"): (0.0, 1.0)})
        assert sel == pytest.approx(1.0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(0, 1), st.floats(0, 1), st.floats(0, 1), st.floats(0, 1),
    )
    def test_join_counts_match_bruteforce_property(self, a, b, c, d):
        lo_age, hi_age = sorted((a, b))
        lo_s, hi_s = sorted((c, d))
        small = make_db(seed=3, users_rows=12, posts_rows=25)
        ex = Executor(small)
        q = Query.build(
            small.schema,
            ["users", "posts"],
            {("users", "age"): (lo_age, hi_age), ("posts", "score"): (lo_s, hi_s)},
        )
        assert ex.count(q) == brute_force_count(small, q)


class TestQueryValidation:
    def setup_method(self):
        self.db = make_db()

    def test_empty_tables_rejected(self):
        with pytest.raises(QueryError):
            Query.build(self.db.schema, [])

    def test_predicate_on_unjoined_table_rejected(self):
        with pytest.raises(QueryError):
            Query.build(self.db.schema, ["users"], {("posts", "score"): (0, 1)})

    def test_bad_bounds_rejected(self):
        with pytest.raises(QueryError):
            Query.build(self.db.schema, ["users"], {("users", "age"): (0.9, 0.1)})
        with pytest.raises(QueryError):
            Query.build(self.db.schema, ["users"], {("users", "age"): (-0.1, 0.5)})

    def test_restricted_to(self):
        q = Query.build(
            self.db.schema,
            ["users", "posts"],
            {("users", "age"): (0.1, 0.9), ("posts", "score"): (0.2, 0.5)},
        )
        sub = q.restricted_to(["users"])
        assert sub.tables == frozenset({"users"})
        assert sub.predicates == {("users", "age"): (0.1, 0.9)}
        with pytest.raises(QueryError):
            q.restricted_to(["ghost"])

    def test_to_sql_contains_join_and_bounds(self):
        q = Query.build(
            self.db.schema, ["users", "posts"], {("users", "age"): (0.0, 0.5)}
        )
        sql = q.to_sql(self.db.schema)
        assert "posts.user_id = users.id" in sql
        assert "users.age BETWEEN" in sql
        assert sql.startswith("SELECT COUNT(*)")

    def test_cache_key_stable_under_dict_order(self):
        preds1 = {("users", "age"): (0.1, 0.2), ("posts", "score"): (0.3, 0.4)}
        preds2 = dict(reversed(list(preds1.items())))
        q1 = Query.build(self.db.schema, ["users", "posts"], preds1)
        q2 = Query.build(self.db.schema, ["users", "posts"], preds2)
        assert q1.cache_key() == q2.cache_key()

    def test_labeled_query_rejects_negative(self):
        from repro.db import LabeledQuery

        q = Query.build(self.db.schema, ["users"])
        with pytest.raises(QueryError):
            LabeledQuery(q, -1)


class TestMemoCache:
    def setup_method(self):
        self.db = make_db()

    def _queries(self, n):
        widths = np.linspace(0.1, 0.9, n)
        return [
            Query.build(self.db.schema, ["users"], {("users", "age"): (0.0, float(w))})
            for w in widths
        ]

    def test_hit_and_miss_counters(self):
        ex = Executor(self.db)
        q1, q2 = self._queries(2)
        ex.count(q1)
        ex.count(q2)
        ex.count(q1)
        assert ex.cache_misses == 2
        assert ex.cache_hits == 1

    def test_capacity_bound_enforced(self):
        ex = Executor(self.db, cache_size=2)
        for q in self._queries(5):
            ex.count(q)
        assert len(ex._cache) == 2

    def test_least_recently_used_is_evicted(self):
        ex = Executor(self.db, cache_size=2)
        q1, q2, q3 = self._queries(3)
        ex.count(q1)
        ex.count(q2)
        ex.count(q1)  # refresh q1: now q2 is the LRU entry
        ex.count(q3)  # evicts q2
        executed = ex.executed_count
        ex.count(q1)
        assert ex.executed_count == executed  # still cached
        ex.count(q2)
        assert ex.executed_count == executed + 1  # was evicted, re-executes

    def test_eviction_keeps_results_correct(self):
        ex = Executor(self.db, cache_size=1)
        unbounded = Executor(self.db)
        queries = self._queries(4)
        thrashed = [ex.count(q) for q in queries + list(reversed(queries))]
        expected = [unbounded.count(q) for q in queries + list(reversed(queries))]
        assert thrashed == expected

    def test_perf_counters_track_cache_traffic(self):
        from repro.perf.registry import PERF

        ex = Executor(self.db)
        q1, q2 = self._queries(2)
        PERF.enable()
        PERF.reset()
        try:
            ex.count(q1)
            ex.count(q1)
            ex.count(q2)
        finally:
            PERF.disable()
        assert PERF.counters["db.cache_hits"] == 1
        assert PERF.counters["db.cache_misses"] == 2

    def test_counters_silent_when_perf_disabled(self):
        from repro.perf.registry import PERF

        PERF.reset()
        ex = Executor(self.db)
        (q1,) = self._queries(1)
        ex.count(q1)
        ex.count(q1)
        assert "db.cache_hits" not in PERF.counters
        assert ex.cache_hits == 1  # the plain attributes still count


def make_branching_db(seed=0, sizes=(30, 70, 50, 90)):
    """Four tables joined a-b, a-c, c-d: a tree that branches at ``a``.

    Exercises the counting path on a shape the old frontier propagation
    could not summarize with a single table's weights.
    """
    rng = np.random.default_rng(seed)
    n_a, n_b, n_c, n_d = sizes
    schemas = [
        TableSchema("a", (Column("id", kind="key"), Column("x", low=0, high=10))),
        TableSchema(
            "b", (Column("a_id", kind="key"), Column("y", low=0, high=10))
        ),
        TableSchema(
            "c",
            (
                Column("id", kind="key"),
                Column("a_id", kind="key"),
                Column("z", low=0, high=10),
            ),
        ),
        TableSchema("d", (Column("c_id", kind="key"), Column("w", low=0, high=10))),
    ]
    schema = DatabaseSchema(
        "branchy",
        schemas,
        [
            JoinEdge("b", "a_id", "a", "id"),
            JoinEdge("c", "a_id", "a", "id"),
            JoinEdge("d", "c_id", "c", "id"),
        ],
    )
    tables = {
        "a": Table(
            schemas[0],
            {
                "id": np.arange(n_a),
                "x": rng.integers(0, 11, size=n_a).astype(float),
            },
        ),
        "b": Table(
            schemas[1],
            {
                "a_id": rng.integers(0, n_a, size=n_b),
                "y": rng.integers(0, 11, size=n_b).astype(float),
            },
        ),
        "c": Table(
            schemas[2],
            {
                "id": np.arange(n_c),
                "a_id": rng.integers(0, n_a, size=n_c),
                "z": rng.integers(0, 11, size=n_c).astype(float),
            },
        ),
        "d": Table(
            schemas[3],
            {
                "c_id": rng.integers(0, n_c, size=n_d),
                "w": rng.integers(0, 11, size=n_d).astype(float),
            },
        ),
    }
    return Database(schema, tables)


class _MaterializedOnly(Executor):
    """Reference executor: always take the materializing join loop."""

    def _execute_counting(self, oriented, filtered, root):
        return None


class TestCountingPathEquivalence:
    """The fold-up counting path must be indistinguishable from the
    materializing loop: same counts, same budget aborts, same zeros."""

    def _random_query(self, db, rng):
        sets = db.schema.connected_join_sets(4)
        tables = sets[rng.integers(len(sets))]
        predicates = {}
        for table in tables:
            for column in db.schema.table(table).attributes:
                if rng.random() < 0.5:
                    lo, hi = sorted(rng.random(2))
                    predicates[(table, column.name)] = (float(lo), float(hi))
        return Query.build(db.schema, tables, predicates)

    def _outcome(self, executor, query):
        try:
            return executor._execute(query)
        except ExecutionBudgetError:
            return "budget-exceeded"

    def test_matches_materialized_on_random_queries(self):
        db = make_branching_db()
        fast = Executor(db)
        slow = _MaterializedOnly(db)
        rng = np.random.default_rng(7)
        for _ in range(150):
            query = self._random_query(db, rng)
            assert self._outcome(fast, query) == self._outcome(slow, query)

    def test_matches_materialized_under_tight_budget(self):
        db = make_branching_db()
        fast = Executor(db, max_intermediate=40)
        slow = _MaterializedOnly(db, max_intermediate=40)
        rng = np.random.default_rng(11)
        saw_budget = False
        for _ in range(150):
            query = self._random_query(db, rng)
            ours, theirs = self._outcome(fast, query), self._outcome(slow, query)
            assert ours == theirs
            saw_budget = saw_budget or ours == "budget-exceeded"
        assert saw_budget  # the tight budget actually exercised the abort path

    def test_branching_join_matches_bruteforce(self):
        db = make_branching_db(sizes=(6, 10, 8, 12))
        ex = Executor(db)
        rng = np.random.default_rng(3)
        for _ in range(25):
            query = self._random_query(db, rng)
            assert ex.count(query) == brute_force_count(db, query)

    def test_non_integer_keys_fall_back(self):
        db = make_db()
        ex = Executor(db)
        # Rebuild the users key column as float: the counting path must
        # decline (bincount needs integers) and defer to materialization.
        float_db = Database(
            db.schema,
            {
                "users": Table(
                    db.schema.table("users"),
                    {
                        "id": db.table("users").column("id").astype(float),
                        "age": db.table("users").column("age"),
                    },
                ),
                "posts": db.tables["posts"],
            },
        )
        float_ex = Executor(float_db)
        q = Query.build(db.schema, ["users", "posts"], {("users", "age"): (0.0, 0.6)})
        assert float_ex.count(q) == ex.count(q)
