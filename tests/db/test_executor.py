"""Ground-truth execution vs a brute-force reference implementation."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    Column,
    Database,
    DatabaseSchema,
    Executor,
    JoinEdge,
    Query,
    Table,
    TableSchema,
    hash_join_pairs,
)
from repro.utils.errors import QueryError


def make_db(seed=0, users_rows=40, posts_rows=120):
    rng = np.random.default_rng(seed)
    users_schema = TableSchema(
        "users", (Column("id", kind="key"), Column("age", low=0, high=100))
    )
    posts_schema = TableSchema(
        "posts",
        (
            Column("id", kind="key"),
            Column("user_id", kind="key"),
            Column("score", low=0, high=50),
        ),
    )
    schema = DatabaseSchema(
        "mini", [users_schema, posts_schema], [JoinEdge("posts", "user_id", "users", "id")]
    )
    users = Table(
        users_schema,
        {
            "id": np.arange(users_rows),
            "age": rng.integers(0, 101, size=users_rows).astype(float),
        },
    )
    posts = Table(
        posts_schema,
        {
            "id": np.arange(posts_rows),
            "user_id": rng.integers(0, users_rows, size=posts_rows),
            "score": rng.integers(0, 51, size=posts_rows).astype(float),
        },
    )
    return Database(schema, {"users": users, "posts": posts})


def brute_force_count(db, query):
    """Nested-loop reference: iterate the cartesian product of the tables."""
    tables = sorted(query.tables)
    rows = {t: range(db.table(t).num_rows) for t in tables}
    edges = db.schema.join_edges_within(query.tables)
    count = 0
    for combo in itertools.product(*(rows[t] for t in tables)):
        assignment = dict(zip(tables, combo))
        ok = True
        for edge in edges:
            lv = db.table(edge.left_table).column(edge.left_column)[assignment[edge.left_table]]
            rv = db.table(edge.right_table).column(edge.right_column)[
                assignment[edge.right_table]
            ]
            if lv != rv:
                ok = False
                break
        if not ok:
            continue
        for (tbl, col), (lo, hi) in query.predicates.items():
            column = db.schema.table(tbl).column(col)
            value = db.table(tbl).column(col)[assignment[tbl]]
            if not (column.denormalize(lo) <= value <= column.denormalize(hi)):
                ok = False
                break
        if ok:
            count += 1
    return count


class TestHashJoinPairs:
    def test_basic_matches(self):
        li, ri = hash_join_pairs(np.array([1, 2, 2]), np.array([2, 3, 2]))
        pairs = sorted(zip(li.tolist(), ri.tolist()))
        assert pairs == [(1, 0), (1, 2), (2, 0), (2, 2)]

    def test_empty_inputs(self):
        li, ri = hash_join_pairs(np.array([]), np.array([1]))
        assert li.size == 0 and ri.size == 0

    def test_no_matches(self):
        li, ri = hash_join_pairs(np.array([1]), np.array([2]))
        assert li.size == 0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 5), min_size=0, max_size=15),
        st.lists(st.integers(0, 5), min_size=0, max_size=15),
    )
    def test_count_matches_bruteforce(self, left, right):
        li, _ri = hash_join_pairs(np.array(left), np.array(right))
        expected = sum(1 for a in left for b in right if a == b)
        assert li.size == expected


class TestExecutor:
    def setup_method(self):
        self.db = make_db()
        self.ex = Executor(self.db)

    def test_single_table_no_predicates(self):
        q = Query.build(self.db.schema, ["users"])
        assert self.ex.count(q) == 40

    def test_single_table_predicate(self):
        q = Query.build(self.db.schema, ["users"], {("users", "age"): (0.0, 0.5)})
        assert self.ex.count(q) == brute_force_count(self.db, q)

    def test_join_no_predicates_equals_child_rows(self):
        q = Query.build(self.db.schema, ["users", "posts"])
        # every post references an existing user
        assert self.ex.count(q) == 120

    def test_join_with_predicates_matches_bruteforce(self):
        q = Query.build(
            self.db.schema,
            ["users", "posts"],
            {("users", "age"): (0.2, 0.8), ("posts", "score"): (0.0, 0.4)},
        )
        assert self.ex.count(q) == brute_force_count(self.db, q)

    def test_impossible_predicate_is_zero(self):
        q = Query.build(self.db.schema, ["users"], {("users", "age"): (0.999, 1.0)})
        count = self.ex.count(q)
        assert count == brute_force_count(self.db, q)

    def test_memoization_counts_executions(self):
        q = Query.build(self.db.schema, ["users", "posts"])
        before = self.ex.executed_count
        self.ex.count(q)
        self.ex.count(q)
        assert self.ex.executed_count == before + 1

    def test_count_many_vectorizes(self):
        q1 = Query.build(self.db.schema, ["users"])
        q2 = Query.build(self.db.schema, ["posts"])
        np.testing.assert_array_equal(self.ex.count_many([q1, q2]), [40.0, 120.0])

    def test_selectivity(self):
        sel = self.ex.selectivity("users", {("users", "age"): (0.0, 1.0)})
        assert sel == pytest.approx(1.0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(0, 1), st.floats(0, 1), st.floats(0, 1), st.floats(0, 1),
    )
    def test_join_counts_match_bruteforce_property(self, a, b, c, d):
        lo_age, hi_age = sorted((a, b))
        lo_s, hi_s = sorted((c, d))
        small = make_db(seed=3, users_rows=12, posts_rows=25)
        ex = Executor(small)
        q = Query.build(
            small.schema,
            ["users", "posts"],
            {("users", "age"): (lo_age, hi_age), ("posts", "score"): (lo_s, hi_s)},
        )
        assert ex.count(q) == brute_force_count(small, q)


class TestQueryValidation:
    def setup_method(self):
        self.db = make_db()

    def test_empty_tables_rejected(self):
        with pytest.raises(QueryError):
            Query.build(self.db.schema, [])

    def test_predicate_on_unjoined_table_rejected(self):
        with pytest.raises(QueryError):
            Query.build(self.db.schema, ["users"], {("posts", "score"): (0, 1)})

    def test_bad_bounds_rejected(self):
        with pytest.raises(QueryError):
            Query.build(self.db.schema, ["users"], {("users", "age"): (0.9, 0.1)})
        with pytest.raises(QueryError):
            Query.build(self.db.schema, ["users"], {("users", "age"): (-0.1, 0.5)})

    def test_restricted_to(self):
        q = Query.build(
            self.db.schema,
            ["users", "posts"],
            {("users", "age"): (0.1, 0.9), ("posts", "score"): (0.2, 0.5)},
        )
        sub = q.restricted_to(["users"])
        assert sub.tables == frozenset({"users"})
        assert sub.predicates == {("users", "age"): (0.1, 0.9)}
        with pytest.raises(QueryError):
            q.restricted_to(["ghost"])

    def test_to_sql_contains_join_and_bounds(self):
        q = Query.build(
            self.db.schema, ["users", "posts"], {("users", "age"): (0.0, 0.5)}
        )
        sql = q.to_sql(self.db.schema)
        assert "posts.user_id = users.id" in sql
        assert "users.age BETWEEN" in sql
        assert sql.startswith("SELECT COUNT(*)")

    def test_cache_key_stable_under_dict_order(self):
        preds1 = {("users", "age"): (0.1, 0.2), ("posts", "score"): (0.3, 0.4)}
        preds2 = dict(reversed(list(preds1.items())))
        q1 = Query.build(self.db.schema, ["users", "posts"], preds1)
        q2 = Query.build(self.db.schema, ["users", "posts"], preds2)
        assert q1.cache_key() == q2.cache_key()

    def test_labeled_query_rejects_negative(self):
        from repro.db import LabeledQuery

        q = Query.build(self.db.schema, ["users"])
        with pytest.raises(QueryError):
            LabeledQuery(q, -1)
