"""Schema objects and join-graph queries."""

import pytest

from repro.db import Column, DatabaseSchema, JoinEdge, TableSchema
from repro.utils.errors import SchemaError


def two_table_schema():
    users = TableSchema(
        "users",
        (Column("id", kind="key"), Column("age", low=0, high=100)),
    )
    posts = TableSchema(
        "posts",
        (
            Column("id", kind="key"),
            Column("user_id", kind="key"),
            Column("score", low=-10, high=50),
        ),
    )
    return DatabaseSchema("mini", [users, posts], [JoinEdge("posts", "user_id", "users", "id")])


class TestColumn:
    def test_normalize_roundtrip(self):
        col = Column("age", low=0, high=100)
        assert col.normalize(25) == pytest.approx(0.25)
        assert col.denormalize(0.25) == pytest.approx(25)

    def test_invalid_kind(self):
        with pytest.raises(SchemaError):
            Column("x", kind="weird")

    def test_invalid_domain(self):
        with pytest.raises(SchemaError):
            Column("x", low=5, high=5)


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (Column("a"), Column("a")))

    def test_attributes_exclude_keys(self):
        schema = two_table_schema()
        assert [c.name for c in schema.table("posts").attributes] == ["score"]
        assert [c.name for c in schema.table("posts").keys] == ["id", "user_id"]

    def test_unknown_column(self):
        schema = two_table_schema()
        with pytest.raises(SchemaError):
            schema.table("users").column("ghost")


class TestDatabaseSchema:
    def test_attribute_order_is_global(self):
        schema = two_table_schema()
        assert schema.attribute_order == (("users", "age"), ("posts", "score"))
        assert schema.attribute_index("posts", "score") == 1

    def test_join_edge_validation(self):
        users = TableSchema("users", (Column("id", kind="key"),))
        with pytest.raises(SchemaError):
            DatabaseSchema("bad", [users], [JoinEdge("users", "id", "ghost", "id")])

    def test_duplicate_table_rejected(self):
        users = TableSchema("users", (Column("id", kind="key"),))
        with pytest.raises(SchemaError):
            DatabaseSchema("bad", [users, users], [])

    def test_valid_join_sets(self):
        schema = two_table_schema()
        assert schema.is_valid_join_set({"users"})
        assert schema.is_valid_join_set({"users", "posts"})
        assert not schema.is_valid_join_set(set())
        assert not schema.is_valid_join_set({"users", "ghost"})

    def test_join_edges_within_single_table_empty(self):
        schema = two_table_schema()
        assert schema.join_edges_within({"users"}) == []

    def test_join_edges_within_disconnected_raises(self):
        users = TableSchema("users", (Column("id", kind="key"),))
        tags = TableSchema("tags", (Column("id", kind="key"),))
        schema = DatabaseSchema("disc", [users, tags], [])
        with pytest.raises(SchemaError):
            schema.join_edges_within({"users", "tags"})

    def test_connected_join_sets_enumeration(self):
        schema = two_table_schema()
        sets = schema.connected_join_sets(max_size=2)
        assert frozenset({"users"}) in sets
        assert frozenset({"users", "posts"}) in sets
        assert len(sets) == 3

    def test_neighbors(self):
        schema = two_table_schema()
        assert schema.neighbors("users") == ("posts",)

    def test_edge_helpers(self):
        edge = JoinEdge("posts", "user_id", "users", "id")
        assert edge.touches("posts") and edge.touches("users")
        assert edge.other("posts") == "users"
        assert edge.column_for("users") == "id"
        with pytest.raises(SchemaError):
            edge.other("ghost")
