"""Query encoding: layout, roundtrips, repair, property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import load_dataset
from repro.db import Query
from repro.utils.errors import EncodingError
from repro.workload import QueryEncoder, WorkloadGenerator


@pytest.fixture(scope="module")
def imdb():
    db = load_dataset("imdb", scale="smoke", seed=0)
    return db, QueryEncoder(db.schema)


@pytest.fixture(scope="module")
def dmv():
    db = load_dataset("dmv", scale="smoke", seed=0)
    return db, QueryEncoder(db.schema)


class TestLayout:
    def test_dim_formula(self, imdb):
        db, enc = imdb
        assert enc.dim == db.schema.num_tables + 2 * db.schema.num_attributes

    def test_join_bits_set(self, imdb):
        db, enc = imdb
        q = Query.build(db.schema, ["title", "cast_info"])
        vec = enc.encode(q)
        assert vec[db.schema.table_index("title")] == 1.0
        assert vec[db.schema.table_index("cast_info")] == 1.0
        assert vec[enc.join_slice()].sum() == 2.0

    def test_unconstrained_attributes_are_open(self, imdb):
        db, enc = imdb
        q = Query.build(db.schema, ["title"])
        vec = enc.encode(q)
        bounds = vec[enc.predicate_slice()].reshape(-1, 2)
        np.testing.assert_array_equal(bounds[:, 0], 0.0)
        np.testing.assert_array_equal(bounds[:, 1], 1.0)

    def test_bounds_positions(self, imdb):
        db, enc = imdb
        q = Query.build(
            db.schema, ["title"], {("title", "production_year"): (0.25, 0.75)}
        )
        vec = enc.encode(q)
        lo, hi = enc.bounds_positions("title", "production_year")
        assert vec[lo] == 0.25 and vec[hi] == 0.75

    def test_attribute_mask_rows_sum_to_table_attr_counts(self, imdb):
        db, enc = imdb
        for t in db.schema.table_names:
            row = enc.attribute_mask[db.schema.table_index(t)]
            assert row.sum() == len(db.schema.attributes_of(t))

    def test_expand_attribute_mask(self, imdb):
        db, enc = imdb
        join = np.zeros((1, enc.num_tables))
        join[0, db.schema.table_index("title")] = 1.0
        mask = enc.expand_attribute_mask(join)
        assert mask.sum() == len(db.schema.attributes_of("title"))


class TestRoundtrip:
    def test_encode_decode_identity(self, imdb):
        db, enc = imdb
        q = Query.build(
            db.schema,
            ["title", "cast_info", "name"],
            {("title", "production_year"): (0.3, 0.7), ("name", "gender"): (0.1, 0.4)},
        )
        back = enc.decode(enc.encode(q))
        assert back.tables == q.tables
        for key, bounds in q.predicates.items():
            assert back.predicates[key] == pytest.approx(bounds)

    def test_wrong_width_rejected(self, imdb):
        _db, enc = imdb
        with pytest.raises(EncodingError):
            enc.decode(np.zeros(enc.dim + 1))

    def test_invalid_join_set_raises_without_repair(self, imdb):
        db, enc = imdb
        vec = np.zeros(enc.dim)
        vec[enc.predicate_slice()] = np.tile([0.0, 1.0], enc.num_attributes)
        # two disconnected dimension tables
        vec[db.schema.table_index("kind_type")] = 1.0
        vec[db.schema.table_index("link_type")] = 1.0
        with pytest.raises(EncodingError):
            enc.decode(vec)
        repaired = enc.decode(vec, repair=True)
        assert db.schema.is_valid_join_set(repaired.tables)

    def test_repair_of_empty_join_picks_best_bit(self, imdb):
        db, enc = imdb
        vec = np.zeros(enc.dim)
        vec[enc.predicate_slice()] = np.tile([0.0, 1.0], enc.num_attributes)
        vec[db.schema.table_index("title")] = 0.45  # below threshold
        q = enc.decode(vec, repair=True)
        assert q.tables == frozenset({"title"})

    def test_swapped_bounds_fixed(self, dmv):
        db, enc = dmv
        q = Query.build(db.schema, ["dmv"])
        vec = enc.encode(q)
        lo, hi = enc.bounds_positions("dmv", "city")
        vec[lo], vec[hi] = 0.8, 0.3
        back = enc.decode(vec)
        assert back.predicates[("dmv", "city")] == (0.3, 0.8)

    def test_snap_turns_near_open_into_open(self, dmv):
        db, enc = dmv
        q = Query.build(db.schema, ["dmv"])
        vec = enc.encode(q)
        lo, hi = enc.bounds_positions("dmv", "city")
        vec[lo], vec[hi] = 0.01, 0.995
        back = enc.decode(vec)
        assert ("dmv", "city") not in back.predicates

    def test_predicates_of_unjoined_tables_dropped(self, imdb):
        db, enc = imdb
        vec = np.zeros(enc.dim)
        vec[enc.predicate_slice()] = np.tile([0.0, 1.0], enc.num_attributes)
        vec[db.schema.table_index("title")] = 1.0
        lo, hi = enc.bounds_positions("name", "gender")
        vec[lo], vec[hi] = 0.2, 0.4
        q = enc.decode(vec)
        assert q.tables == frozenset({"title"})
        assert not q.predicates


class TestRandomRoundtrip:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_generated_queries_roundtrip(self, seed):
        db = load_dataset("tpch", scale="smoke", seed=0)
        enc = QueryEncoder(db.schema)
        gen = WorkloadGenerator(db, seed=seed)
        q = gen.random_query(max_tables=3)
        back = enc.decode(enc.encode(q))
        assert back.tables == q.tables
        # predicates survive modulo snap of near-open bounds
        for key, (lo, hi) in q.predicates.items():
            if lo <= 0.02 and hi >= 0.98:
                continue
            assert key in back.predicates


class TestBatchedEncodeEquivalence:
    """encode_many's scatter-based batching vs the per-query reference."""

    def _random_queries(self, db, count, seed):
        generator = WorkloadGenerator(db, seed=seed)
        return [generator.random_query() for _ in range(count)]

    def test_encode_many_matches_per_query_encode(self, imdb):
        db, enc = imdb
        queries = self._random_queries(db, 40, seed=5)
        batched = enc.encode_many(queries)
        reference = np.stack([enc.encode(q) for q in queries])
        np.testing.assert_array_equal(batched, reference)

    def test_encode_many_on_single_table_dataset(self, dmv):
        db, enc = dmv
        queries = self._random_queries(db, 20, seed=9)
        np.testing.assert_array_equal(
            enc.encode_many(queries), np.stack([enc.encode(q) for q in queries])
        )

    def test_encode_many_empty(self, imdb):
        _db, enc = imdb
        out = enc.encode_many([])
        assert out.shape == (0, enc.dim)


class TestWorkloadEncodingMemo:
    def _workload(self, db, count=12, seed=3):
        return WorkloadGenerator(db, seed=seed).generate(count)

    def test_encode_memoized_per_encoder(self, dmv):
        db, enc = dmv
        workload = self._workload(db)
        first = workload.encode(enc)
        second = workload.encode(enc)
        assert first is second  # cached, not re-encoded

    def test_memoized_matrix_is_readonly(self, dmv):
        db, enc = dmv
        workload = self._workload(db)
        matrix = workload.encode(enc)
        with pytest.raises(ValueError):
            matrix[0, 0] = 99.0

    def test_distinct_encoders_get_distinct_entries(self, dmv):
        db, enc = dmv
        other = QueryEncoder(db.schema)
        workload = self._workload(db)
        np.testing.assert_array_equal(workload.encode(enc), workload.encode(other))
        assert workload.encode(enc) is not workload.encode(other)

    def test_cardinalities_memoized_and_readonly(self, dmv):
        db, _enc = dmv
        workload = self._workload(db)
        cards = workload.cardinalities
        assert workload.cardinalities is cards
        with pytest.raises(ValueError):
            cards[0] = -1.0
