"""Workload generation: validity, labels, probe groups, templates."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.db import Executor
from repro.workload import (
    WorkloadGenerator,
    default_templates,
    template_workload,
)
from repro.workload.workload import Workload
from repro.utils.errors import TrainingError


@pytest.fixture(scope="module")
def stats():
    db = load_dataset("stats", scale="smoke", seed=0)
    return db, Executor(db)


class TestRandomQueries:
    def test_join_sets_always_valid(self, stats):
        db, ex = stats
        gen = WorkloadGenerator(db, ex, seed=3)
        for _ in range(30):
            q = gen.random_query(max_tables=4)
            assert db.schema.is_valid_join_set(q.tables)

    def test_n_columns_respected(self, stats):
        db, ex = stats
        gen = WorkloadGenerator(db, ex, seed=4)
        q = gen.random_query(max_tables=2, n_columns=2)
        assert q.num_predicates <= 2

    def test_range_scale_bounds_width(self, stats):
        db, ex = stats
        gen = WorkloadGenerator(db, ex, seed=5)
        q = gen.random_query(max_tables=1, range_scale=0.1)
        for lo, hi in q.predicates.values():
            assert hi - lo <= 0.1 + 1e-9

    def test_fixed_tables(self, stats):
        db, ex = stats
        gen = WorkloadGenerator(db, ex, seed=6)
        q = gen.random_query(tables=frozenset({"users", "posts"}))
        assert q.tables == frozenset({"users", "posts"})


class TestWorkloads:
    def test_generate_yields_nonempty_labels(self, stats):
        db, ex = stats
        gen = WorkloadGenerator(db, ex, seed=7)
        wl = gen.generate(25)
        assert len(wl) == 25
        assert np.all(wl.cardinalities > 0)

    def test_deterministic_given_seed(self, stats):
        db, ex = stats
        a = WorkloadGenerator(db, ex, seed=11).generate(10)
        b = WorkloadGenerator(db, ex, seed=11).generate(10)
        np.testing.assert_array_equal(a.cardinalities, b.cardinalities)
        assert [q.cache_key() for q in a.queries] == [q.cache_key() for q in b.queries]

    def test_probe_groups_cover_both_axes(self, stats):
        db, ex = stats
        gen = WorkloadGenerator(db, ex, seed=8)
        groups = gen.probe_workloads(queries_per_group=4)
        names = [name for name, _ in groups]
        assert any(n.startswith("cols=") for n in names)
        assert any(n.startswith("range=") for n in names)
        assert all(len(wl) == 4 for _, wl in groups)


class TestWorkloadContainer:
    def test_split_partitions(self, stats):
        db, ex = stats
        wl = WorkloadGenerator(db, ex, seed=9).generate(20)
        a, b = wl.split(0.7, seed=0)
        assert len(a) == 14 and len(b) == 6

    def test_split_validation(self, stats):
        db, ex = stats
        wl = WorkloadGenerator(db, ex, seed=9).generate(5)
        with pytest.raises(TrainingError):
            wl.split(1.5)

    def test_chunks_cover_everything(self, stats):
        db, ex = stats
        wl = WorkloadGenerator(db, ex, seed=10).generate(17)
        chunks = wl.chunks(5)
        assert sum(len(c) for c in chunks) == 17
        assert len(chunks) == 5

    def test_add_concatenates(self, stats):
        db, ex = stats
        gen = WorkloadGenerator(db, ex, seed=12)
        a, b = gen.generate(5), gen.generate(3)
        assert len(a + b) == 8

    def test_from_queries_drops_empty(self, stats):
        db, ex = stats
        from repro.db import Query

        q_all = Query.build(db.schema, ["users"])
        q_none = Query.build(
            db.schema, ["users"], {("users", "creation_year"): (0.999, 1.0)}
        )
        count_none = ex.count(q_none)
        wl = Workload.from_queries([q_all, q_none], ex)
        expected = 2 if count_none > 0 else 1
        assert len(wl) == expected

    def test_encode_shape(self, stats):
        db, ex = stats
        from repro.workload import QueryEncoder

        enc = QueryEncoder(db.schema)
        wl = WorkloadGenerator(db, ex, seed=13).generate(6)
        assert wl.encode(enc).shape == (6, enc.dim)


class TestTemplates:
    def test_default_templates_distinct_join_sets(self, stats):
        db, _ex = stats
        templates = default_templates(db, count=8, seed=0)
        assert len({t.tables for t in templates}) == len(templates)

    def test_template_workload_uses_template_join_sets(self, stats):
        db, ex = stats
        templates = default_templates(db, count=4, seed=0)
        wl = template_workload(db, 12, templates=templates, executor=ex, seed=0)
        allowed = {t.tables for t in templates}
        assert all(q.tables in allowed for q in wl.queries)
        assert np.all(wl.cardinalities > 0)
