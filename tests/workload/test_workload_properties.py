"""Property-based invariants of the Workload container."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.query import LabeledQuery, Query
from repro.workload.workload import Workload


def synthetic_workload(n: int) -> Workload:
    """A workload over a trivial schema-free query stand-in."""
    from repro.datasets import load_dataset

    db = load_dataset("dmv", scale="smoke", seed=0)
    q = Query.build(db.schema, ["dmv"])
    return Workload([LabeledQuery(q, i + 1) for i in range(n)])


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 60), st.floats(0.05, 0.95))
def test_split_partitions_everything(n, fraction):
    wl = synthetic_workload(n)
    a, b = wl.split(fraction, seed=1)
    assert len(a) + len(b) == n
    combined = sorted(a.cardinalities.tolist() + b.cardinalities.tolist())
    assert combined == sorted(wl.cardinalities.tolist())


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 60), st.integers(1, 10))
def test_chunks_partition_in_order(n, parts):
    wl = synthetic_workload(n)
    chunks = wl.chunks(parts)
    assert len(chunks) == parts
    flattened = [c for chunk in chunks for c in chunk.cardinalities]
    np.testing.assert_array_equal(flattened, wl.cardinalities)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 40), st.integers(0, 1000))
def test_shuffle_preserves_multiset(n, seed):
    wl = synthetic_workload(n)
    shuffled = wl.shuffled(seed=seed)
    assert sorted(shuffled.cardinalities) == sorted(wl.cardinalities)


def test_subset_by_indices():
    wl = synthetic_workload(10)
    sub = wl.subset([0, 3, 7])
    np.testing.assert_array_equal(sub.cardinalities, [1, 4, 8])


def test_getitem_slice_returns_workload():
    wl = synthetic_workload(10)
    head = wl[:4]
    assert isinstance(head, Workload)
    assert len(head) == 4
    assert isinstance(wl[0], LabeledQuery)
