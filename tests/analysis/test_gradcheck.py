"""The autograd engine must agree with finite differences everywhere."""

from __future__ import annotations

from repro.analysis import case_names, max_relative_error, run_gradcheck

EXPECTED_COVERAGE = {
    "layers.Linear",
    "layers.Linear(bias=False)",
    "layers.mlp[Tanh]",
    "layers.Dropout",
    "tensor.affine",
    "tensor.affine(no bias)",
    "tensor.affine[relu]",
    "tensor.affine[sigmoid]",
    "tensor.affine[tanh]",
    "recurrent.RNNCell",
    "recurrent.LSTMCell",
    "recurrent.RNN",
    "recurrent.LSTM",
    "losses.q_error_loss",
    "losses.log_q_error_loss",
    "losses.mse_loss",
    "losses.bce_loss",
    "losses.kl_standard_normal",
    # Fused-kernel audits: one per estimator family, through the real
    # compiled training-loss plan, plus the second-order unrolled update.
    "compiled.fcn.train_step",
    "compiled.fcn_pool.train_step",
    "compiled.mscn.train_step",
    "compiled.rnn.train_step",
    "compiled.lstm.train_step",
    "compiled.linear.train_step",
    "compiled.fcn.second_order",
}


def test_sweep_covers_every_layer_and_loss():
    assert set(case_names()) == EXPECTED_COVERAGE


def test_max_relative_error_below_tolerance():
    results = run_gradcheck(tolerance=1e-4)
    failures = [r for r in results if not r.passed]
    assert not failures, [(r.name, r.max_rel_error) for r in failures]
    assert max_relative_error(results) < 1e-4
    # Every case actually compared a meaningful number of scalar gradients.
    assert all(r.checked >= 12 for r in results)


def test_results_are_deterministic():
    first = run_gradcheck()
    second = run_gradcheck()
    assert [(r.name, r.max_rel_error) for r in first] == [
        (r.name, r.max_rel_error) for r in second
    ]
