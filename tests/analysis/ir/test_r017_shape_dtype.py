"""R017 ir-shape-dtype: abstract interpretation of plan shapes/dtypes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ir import check_plan_shapes, infer_graph

from tests.analysis.ir.conftest import FIXTURE_LABELS, rule_ids


class TestCleanPlans:
    @pytest.mark.parametrize("label", FIXTURE_LABELS)
    def test_fixture_plan_is_shape_and_dtype_clean(self, plans, label):
        issues, checks = check_plan_shapes(plans[label])
        assert issues == []
        assert checks > 0

    def test_inference_rederives_every_declared_shape(self, plans):
        plan = plans["fixture.mlp"]
        abstracts, issues = infer_graph(plan.graph)
        assert issues == []
        for node in plan.graph.nodes:
            assert abstracts[node.idx].shape == node.shape


class TestViolations:
    def test_wrong_declared_op_shape_is_flagged(self, plans):
        plan = plans["fixture.mlp"]
        node = next(n for n in plan.graph.nodes if n.kind == "op")
        node.shape = (7, 7)
        issues, _ = check_plan_shapes(plan)
        assert "R017" in rule_ids(issues)
        assert any(issue.node == node.idx for issue in issues)

    def test_wrong_declared_dtype_is_flagged(self, plans):
        plan = plans["fixture.chain"]
        node = next(n for n in plan.graph.nodes if n.kind == "op")
        node.dtype = "<i8"
        issues, _ = check_plan_shapes(plan)
        assert "R017" in rule_ids(issues)

    def test_tampered_prealloc_buffer_shape_is_flagged(self, plans):
        plan = plans["fixture.mlp"]
        idx = next(
            idx for idx, entry in plan.buffer_table().items()
            if entry["kind"] == "prealloc"
        )
        plan._buffers[idx] = np.empty((7, 7))
        issues, _ = check_plan_shapes(plan)
        assert "R017" in rule_ids(issues)

    def test_tampered_prealloc_buffer_dtype_is_flagged(self, plans):
        plan = plans["fixture.mlp"]
        idx, entry = next(
            (idx, entry) for idx, entry in plan.buffer_table().items()
            if entry["kind"] == "prealloc"
        )
        plan._buffers[idx] = np.empty(entry["shape"], dtype=np.float32)
        issues, _ = check_plan_shapes(plan)
        assert "R017" in rule_ids(issues)

    def test_tampered_const_value_is_flagged(self):
        from repro.nn.compile.plan import build_plan
        from repro.nn.compile.tracer import trace_function
        from repro.nn.tensor import Tensor

        x = Tensor(np.linspace(0.0, 1.0, 6).reshape(2, 3))

        def body(x):
            return (x * Tensor(np.ones((2, 3)))).sum()

        graph, _ = trace_function(body, [x])
        plan = build_plan(graph, "fixture.const", want_slots=())
        clean, _ = check_plan_shapes(plan)
        assert clean == []
        const = next(n for n in plan.graph.nodes if n.kind == "const")
        const.value = np.zeros((9, 9))
        issues, _ = check_plan_shapes(plan)
        assert "R017" in rule_ids(issues)
