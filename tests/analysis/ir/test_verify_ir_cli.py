"""The ``pace-repro verify-ir`` subcommand and its analyze wiring."""

from __future__ import annotations

import json

from repro.cli import main


class TestVerifyIrCommand:
    def test_fast_text_mode_exits_zero(self, capsys):
        assert main(["verify-ir", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fixture.mlp: ok" in out
        assert "verify-ir: ok (3 plans, source fixtures)" in out

    def test_json_mode_round_trips(self, capsys):
        assert main(["verify-ir", "--fast", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["source"] == "fixtures"
        labels = [plan["label"] for plan in payload["plans"]]
        assert labels == ["fixture.mlp", "fixture.chain", "fixture.views"]
        for plan in payload["plans"]:
            assert set(plan["checks"]) == {"R017", "R018", "R019"}

    def test_sarif_mode_carries_the_ir_rule_catalog(self, capsys):
        assert main(["verify-ir", "--fast", "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        rules = {r["id"] for r in payload["runs"][0]["tool"]["driver"]["rules"]}
        assert {"R017", "R018", "R019", "R020"} <= rules

    def test_output_flag_writes_the_report(self, tmp_path, capsys):
        out_path = tmp_path / "ir.json"
        assert main([
            "verify-ir", "--fast", "--format", "json", "--output", str(out_path)
        ]) == 0
        capsys.readouterr()
        assert json.loads(out_path.read_text())["passed"] is True


class TestAnalyzeWiring:
    def test_analyze_fast_embeds_fixture_verification(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text('"""A tiny target module."""\n\nVALUE = 1\n')
        assert main(["analyze", "--fast", "--format", "json", str(mod)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["verify_ir"]["passed"] is True
        assert payload["verify_ir"]["source"] == "fixtures"
        assert len(payload["verify_ir"]["plans"]) == 3
