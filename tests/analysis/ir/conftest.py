"""Shared fixtures for the IR-verifier tests.

``fixture_plans()`` builds fresh plans on every call precisely so these
tests can mutate their schedules and buffers without poisoning each
other; the ``plans`` fixture hands each test its own private set keyed
by label.
"""

from __future__ import annotations

import pytest

from repro.analysis.ir import fixture_plans

FIXTURE_LABELS = ("fixture.mlp", "fixture.chain", "fixture.views")


@pytest.fixture
def plans():
    return {plan.label: plan for plan in fixture_plans()}


def rule_ids(issues):
    return [issue.rule_id for issue in issues]
