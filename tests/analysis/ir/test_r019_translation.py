"""R019 ir-translation: plan vs independent re-linearization of the trace."""

from __future__ import annotations

import pytest

from repro.analysis.ir import check_plan_translation

from tests.analysis.ir.conftest import FIXTURE_LABELS, rule_ids


class TestCleanPlans:
    @pytest.mark.parametrize("label", FIXTURE_LABELS)
    def test_fixture_plan_matches_its_own_trace(self, plans, label):
        issues, checks = check_plan_translation(plans[label])
        assert issues == []
        assert checks > 0

    def test_forward_only_plan_has_no_backward_entries(self, plans):
        plan = plans["fixture.views"]
        assert not plan.has_backward
        issues, _ = check_plan_translation(plan)
        assert issues == []


class TestViolations:
    def test_swapped_forward_order_breaks_topology(self, plans):
        plan = plans["fixture.chain"]  # exp -> tanh -> mul -> sum, one chain
        plan._fwd_per_node[0], plan._fwd_per_node[1] = (
            plan._fwd_per_node[1], plan._fwd_per_node[0],
        )
        issues, _ = check_plan_translation(plan)
        assert "R019" in rule_ids(issues)
        assert any("topolog" in issue.message for issue in issues)

    def test_duplicated_forward_entry_is_flagged(self, plans):
        plan = plans["fixture.chain"]
        plan._fwd_per_node.append(plan._fwd_per_node[0])
        issues, _ = check_plan_translation(plan)
        assert "R019" in rule_ids(issues)
        assert any("more than once" in issue.message for issue in issues)

    def test_dropped_backward_entry_is_flagged(self, plans):
        plan = plans["fixture.mlp"]
        del plan._bwd_per_node[0]
        issues, _ = check_plan_translation(plan)
        assert "R019" in rule_ids(issues)
        assert any("dropped" in issue.message for issue in issues)

    def test_tampered_gradient_writes_are_flagged(self, plans):
        plan = plans["fixture.mlp"]
        entry = next(e for e in plan._bwd_per_node if len(e["checks"]) >= 1)
        entry["checks"] = []
        issues, _ = check_plan_translation(plan)
        assert "R019" in rule_ids(issues)

    def test_tampered_output_mapping_is_flagged(self, plans):
        plan = plans["fixture.views"]
        plan._out_idxs = [0]
        issues, _ = check_plan_translation(plan)
        assert "R019" in rule_ids(issues)
        assert any("outputs" in issue.message for issue in issues)
