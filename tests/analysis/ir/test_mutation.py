"""End-to-end mutation testing of the IR verifier.

The acceptance bar for the verifier is not "fixtures pass" but "a
mis-fused plan cannot slip through": each test here corrupts a real plan
the way a plan-builder bug would and requires :func:`verify_plan` to
fail loudly, with findings anchored to the plan via logical locations.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ir import verify_plan, verify_plans


def _errors(report):
    return [f for f in report.findings if f.severity == "error"]


class TestCleanVerification:
    def test_clean_fixture_passes_all_three_layers(self, plans):
        report = verify_plan(plans["fixture.mlp"])
        assert report.passed
        assert report.findings == []
        assert set(report.checks) == {"R017", "R018", "R019"}
        assert all(count > 0 for count in report.checks.values())
        assert report.graph_hash

    def test_verify_plans_aggregates_and_serializes(self, plans):
        result = verify_plans(list(plans.values()), "fixtures")
        assert result.passed
        payload = result.as_dict()
        assert payload["source"] == "fixtures"
        assert payload["passed"] is True
        assert len(payload["plans"]) == 3


class TestMutationsAreCaught:
    def test_swapped_segment_order(self, plans):
        plan = plans["fixture.chain"]
        plan._fwd_per_node[0], plan._fwd_per_node[1] = (
            plan._fwd_per_node[1], plan._fwd_per_node[0],
        )
        report = verify_plan(plan)
        assert not report.passed
        assert {f.rule_id for f in _errors(report)} >= {"R018", "R019"}

    def test_wrong_buffer_shape(self, plans):
        plan = plans["fixture.mlp"]
        idx = next(
            idx for idx, entry in plan.buffer_table().items()
            if entry["kind"] == "prealloc"
        )
        plan._buffers[idx] = np.empty((7, 7))
        report = verify_plan(plan)
        assert not report.passed
        assert "R017" in {f.rule_id for f in _errors(report)}

    def test_dropped_backward_segment(self, plans):
        plan = plans["fixture.mlp"]
        del plan._bwd_per_node[0]
        report = verify_plan(plan)
        assert not report.passed
        assert {f.rule_id for f in _errors(report)} >= {"R018", "R019"}

    def test_findings_carry_plan_logical_locations(self, plans):
        plan = plans["fixture.mlp"]
        del plan._bwd_per_node[0]
        report = verify_plan(plan)
        for finding in report.findings:
            assert finding.path == "<plan:fixture.mlp>"
            assert finding.logical.startswith("plan:fixture.mlp")

    def test_declined_site_fails_the_aggregate(self, plans):
        result = verify_plans(
            [plans["fixture.views"]], "sweep", declined=["fcn.forward"]
        )
        assert not result.passed
        assert result.declined == ["fcn.forward"]
