"""R018 ir-buffer-safety: liveness, write-once, and guard necessity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ir import check_plan_buffers

from tests.analysis.ir.conftest import FIXTURE_LABELS, rule_ids


def _guardless_plan():
    """A plan whose backward reads no forward buffer: ``(x + x).sum()``.

    ``add``'s backward is shape bookkeeping only, so the run-serial guard
    protects nothing — the verifier must call that out as a warning.
    """
    from repro.nn.compile.plan import build_plan
    from repro.nn.compile.tracer import trace_function
    from repro.nn.tensor import Tensor

    x = Tensor(np.linspace(0.0, 1.0, 6).reshape(2, 3), requires_grad=True)

    def body(x):
        return (x + x).sum()

    graph, _ = trace_function(body, [x])
    return build_plan(graph, "fixture.guardless", want_slots=(0,))


class TestCleanPlans:
    @pytest.mark.parametrize("label", FIXTURE_LABELS)
    def test_fixture_plan_is_buffer_clean(self, plans, label):
        issues, checks = check_plan_buffers(plans[label])
        assert issues == []
        assert checks > 0

    def test_backward_reading_forward_buffers_needs_the_guard(self, plans):
        # fixture.chain's backward reads exp/tanh outputs, so its guard is
        # necessary — no unnecessary-guard warning may appear.
        issues, _ = check_plan_buffers(plans["fixture.chain"])
        assert issues == []
        assert plans["fixture.chain"].guards_serial()


class TestViolations:
    def test_swapped_forward_entries_read_before_write(self, plans):
        plan = plans["fixture.chain"]
        plan._fwd_per_node[0], plan._fwd_per_node[1] = (
            plan._fwd_per_node[1], plan._fwd_per_node[0],
        )
        issues, _ = check_plan_buffers(plan)
        assert "R018" in rule_ids(issues)

    def test_dropped_forward_entry_leaves_buffer_unwritten(self, plans):
        plan = plans["fixture.mlp"]
        del plan._fwd_per_node[1]
        issues, _ = check_plan_buffers(plan)
        assert "R018" in rule_ids(issues)

    def test_backward_writing_a_forward_buffer_is_flagged(self, plans):
        plan = plans["fixture.chain"]
        plan._bwd_per_node[0]["lines"] = list(
            plan._bwd_per_node[0]["lines"]
        ) + ["np.copyto(B[1], B[2])"]
        issues, _ = check_plan_buffers(plan)
        assert "R018" in rule_ids(issues)
        assert any("forward buffer" in issue.message.lower()
                   or "b[" in issue.message.lower() for issue in issues)

    def test_unnecessary_guard_is_a_warning_not_an_error(self):
        plan = _guardless_plan()
        issues, _ = check_plan_buffers(plan)
        assert [(i.rule_id, i.severity) for i in issues] == [("R018", "warning")]
        assert "unnecessary" in issues[0].message
