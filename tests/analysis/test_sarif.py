"""SARIF 2.1.0 output for `analyze --format sarif` and `lint --format sarif`."""

from __future__ import annotations

import json
import textwrap

from repro.analysis import render_sarif, sarif_payload
from repro.analysis.flow import run_flow
from repro.analysis.walker import Finding


def _finding(**overrides):
    base = dict(
        rule_id="R015",
        message="unguarded write to module-level state 'RESULTS'",
        path="src/repro/grid.py",
        line=12,
        col=5,
        severity="error",
        hint="guard the write with a lock",
        end_line=12,
    )
    base.update(overrides)
    return Finding(**base)


def test_payload_shape_and_version():
    payload = sarif_payload([_finding()])
    assert payload["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in payload["$schema"]
    assert len(payload["runs"]) == 1
    driver = payload["runs"][0]["tool"]["driver"]
    assert driver["name"] == "pace-repro"


def test_rule_catalog_covers_all_rule_ids():
    driver = sarif_payload([])["runs"][0]["tool"]["driver"]
    ids = {rule["id"] for rule in driver["rules"]}
    expected = {f"R{n:03d}" for n in range(1, 21)} | {"E997", "E998", "E999"}
    assert expected <= ids


def test_result_carries_location_and_level():
    payload = sarif_payload([_finding()])
    result = payload["runs"][0]["results"][0]
    assert result["ruleId"] == "R015"
    assert result["level"] == "error"
    assert "RESULTS" in result["message"]["text"]
    assert "hint:" in result["message"]["text"]
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 12
    assert region["startColumn"] == 5
    uri = result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
    assert uri == "src/repro/grid.py"


def test_ir_finding_uses_logical_location_not_physical():
    finding = _finding(
        rule_id="R019",
        path="<plan:fcn.forward>",
        line=1,
        col=1,
        end_line=None,
        logical="plan:fcn.forward/node:3",
    )
    result = sarif_payload([finding])["runs"][0]["results"][0]
    location = result["locations"][0]
    assert "physicalLocation" not in location
    assert location["logicalLocations"] == [
        {"name": "plan:fcn.forward/node:3", "kind": "member"}
    ]


def test_file_finding_with_logical_anchor_keeps_both_locations():
    finding = _finding(logical="plan:fcn.forward")
    location = sarif_payload([finding])["runs"][0]["results"][0]["locations"][0]
    assert location["physicalLocation"]["artifactLocation"]["uri"] == "src/repro/grid.py"
    assert location["logicalLocations"][0]["name"] == "plan:fcn.forward"


def test_warning_severity_maps_to_sarif_warning():
    payload = sarif_payload([_finding(severity="warning")])
    assert payload["runs"][0]["results"][0]["level"] == "warning"


def test_empty_findings_is_a_valid_empty_run():
    payload = sarif_payload([])
    assert payload["runs"][0]["results"] == []


def test_render_sarif_is_valid_json():
    rendered = render_sarif([_finding(), _finding(rule_id="R013", line=3)])
    parsed = json.loads(rendered)
    assert len(parsed["runs"][0]["results"]) == 2


def test_real_findings_round_trip_through_sarif(tmp_path):
    (tmp_path / "grid.py").write_text(textwrap.dedent("""
        import multiprocessing as mp

        def run(jobs):
            with mp.Pool(2) as pool:
                return pool.map(lambda j: j, jobs)
        """))
    findings = run_flow([tmp_path], select=["R013"])
    assert findings
    parsed = json.loads(render_sarif(findings))
    results = parsed["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["R013"]
    assert results[0]["locations"][0]["physicalLocation"]["region"]["startLine"] == 6
