"""The incremental per-file parse cache behind ``pace-repro analyze``."""

from __future__ import annotations

import textwrap

from repro.analysis.flow import run_flow
from repro.analysis.flow.cache import ProgramCache, content_digest
from repro.analysis.flow.program import build_program

SOURCE = """
    import multiprocessing as mp

    def job(x):
        return x

    def run(jobs):
        with mp.Pool(2) as pool:
            return pool.map(job, jobs)
    """


def write_fixture(root):
    (root / "grid.py").write_text(textwrap.dedent(SOURCE))
    return root


def test_digest_tracks_content_and_path(tmp_path):
    a = content_digest(b"x = 1\n", tmp_path / "a.py")
    assert a == content_digest(b"x = 1\n", tmp_path / "a.py")
    assert a != content_digest(b"x = 2\n", tmp_path / "a.py")
    assert a != content_digest(b"x = 1\n", tmp_path / "b.py")


def test_second_build_hits_for_every_file(tmp_path):
    write_fixture(tmp_path)
    cache = ProgramCache(tmp_path / ".cache")
    build_program([tmp_path], cache=cache)
    assert cache.misses == 1 and cache.hits == 0

    warm = ProgramCache(tmp_path / ".cache")
    build_program([tmp_path], cache=warm)
    assert warm.hits == 1 and warm.misses == 0


def test_editing_a_file_invalidates_only_that_file(tmp_path):
    write_fixture(tmp_path)
    (tmp_path / "other.py").write_text("def untouched():\n    return 1\n")
    cache = ProgramCache(tmp_path / ".cache")
    build_program([tmp_path], cache=cache)

    (tmp_path / "grid.py").write_text(
        textwrap.dedent(SOURCE) + "\n\nEXTRA = 1\n"
    )
    warm = ProgramCache(tmp_path / ".cache")
    build_program([tmp_path], cache=warm)
    assert warm.hits == 1  # other.py
    assert warm.misses == 1  # edited grid.py


def test_cached_and_uncached_findings_are_identical(tmp_path):
    write_fixture(tmp_path)
    (tmp_path / "grid.py").write_text(
        textwrap.dedent(SOURCE).replace("pool.map(job", "pool.map(lambda j: j")
    )
    cache = ProgramCache(tmp_path / ".cache")
    cold = run_flow([tmp_path], program=build_program([tmp_path], cache=cache))
    warm_cache = ProgramCache(tmp_path / ".cache")
    warm = run_flow(
        [tmp_path], program=build_program([tmp_path], cache=warm_cache)
    )
    bare = run_flow([tmp_path])
    assert warm_cache.hits == 1
    as_tuples = lambda fs: [(f.rule_id, f.path, f.line, f.message) for f in fs]
    assert as_tuples(cold) == as_tuples(warm) == as_tuples(bare)
    assert any(f.rule_id == "R013" for f in bare)


def test_corrupt_cache_entry_degrades_to_a_miss(tmp_path):
    write_fixture(tmp_path)
    cache = ProgramCache(tmp_path / ".cache")
    build_program([tmp_path], cache=cache)

    for entry in (tmp_path / ".cache").rglob("*.pkl"):
        entry.write_bytes(b"not a pickle")

    poisoned = ProgramCache(tmp_path / ".cache")
    program = build_program([tmp_path], cache=poisoned)
    assert poisoned.misses == 1 and poisoned.hits == 0
    assert "grid" in program.modules  # re-parsed from source


def test_unwritable_cache_dir_never_fails_the_build(tmp_path):
    write_fixture(tmp_path)
    blocked = tmp_path / "blocked"
    blocked.write_text("a file where the cache dir should be")
    cache = ProgramCache(blocked)  # mkdir will fail inside put()
    program = build_program([tmp_path], cache=cache)
    assert "grid" in program.modules


def test_ruleset_digest_is_part_of_the_cache_key(tmp_path):
    from repro.analysis.flow import cache as cache_mod
    from repro.analysis.flow.engine import _FLOW_REGISTRY, FlowRule, register_flow

    before = cache_mod.content_digest(b"x = 1\n", tmp_path / "a.py")

    @register_flow
    class _Probe(FlowRule):
        rule_id = "R999"
        title = "probe"

        def check(self, program):
            return iter(())

    try:
        cache_mod._reset_ruleset_digest()
        after = cache_mod.content_digest(b"x = 1\n", tmp_path / "a.py")
        # A new registered rule means a new analyzer version: same bytes,
        # different key, so stale entries miss instead of being served.
        assert after != before
    finally:
        del _FLOW_REGISTRY["R999"]
        cache_mod._reset_ruleset_digest()
    assert cache_mod.content_digest(b"x = 1\n", tmp_path / "a.py") == before
