"""The tree gates on its own linter: ``src/repro`` must stay clean."""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis import render_text, run_lint

PACKAGE_ROOT = Path(repro.__file__).resolve().parent


def test_src_repro_is_violation_free():
    findings = run_lint([PACKAGE_ROOT])
    assert findings == [], "\n" + render_text(findings, show_hints=True)


def test_all_six_rules_are_registered():
    from repro.analysis import all_rules

    ids = sorted(rule.rule_id for rule in all_rules())
    assert ids == ["R001", "R002", "R003", "R004", "R005", "R006"]
