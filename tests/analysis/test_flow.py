"""Flow rules: R007 taint, R008 dead code, R009 shapes, R010 spans, R011 hot path."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.flow import all_flow_rules, build_program, flow_rule_ids, run_flow


def write_tree(root, files: dict[str, str]):
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def flow_findings(tmp_path, files, select=None, reference=None):
    write_tree(tmp_path, files)
    reference_paths = [tmp_path / r for r in reference] if reference else []
    return run_flow([tmp_path], reference_paths=reference_paths, select=select)


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestRegistry:
    def test_flow_rules_are_r007_through_r016_plus_r020(self):
        assert flow_rule_ids() == [
            "R007", "R008", "R009", "R010", "R011", "R012",
            "R013", "R014", "R015", "R016", "R020",
        ]

    def test_select_validates_ids(self):
        with pytest.raises(KeyError) as exc_info:
            all_flow_rules(select=["R007", "R999"])
        message = str(exc_info.value)
        assert "R999" in message and "known flow rules" in message

    def test_select_restricts(self):
        rules = all_flow_rules(select=["r008"])
        assert [r.rule_id for r in rules] == ["R008"]


class TestR007RngTaint:
    def test_raw_generator_through_helper_is_caught_at_draw_site(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "pipeline.py": """
                import numpy as np

                def make_stream():
                    return np.random.default_rng(0)

                def sample(n):
                    rng = make_stream()
                    return rng.normal(size=n)
                """,
        }, select=["R007"])
        assert rule_ids(findings) == ["R007"]
        assert "helper 'make_stream'" in findings[0].message
        assert ".normal()" in findings[0].message

    def test_two_level_helper_chain_is_caught(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "deep.py": """
                import numpy as np

                def inner():
                    return np.random.default_rng(1)

                def outer():
                    return inner()

                def sample():
                    stream = outer()
                    return stream.choice([1, 2, 3])
                """,
        }, select=["R007"])
        assert rule_ids(findings) == ["R007"]

    def test_direct_chained_constructor_is_caught(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "chained.py": """
                import numpy as np

                def sample():
                    return np.random.default_rng(0).normal(size=3)
                """,
        }, select=["R007"])
        assert rule_ids(findings) == ["R007"]
        assert "np.random.default_rng" in findings[0].message

    def test_raw_reassignment_shadows_blessed_parameter(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "shadow.py": """
                import numpy as np

                def sample(rng):
                    rng = np.random.default_rng(1)
                    return rng.integers(0, 10)
                """,
        }, select=["R007"])
        assert rule_ids(findings) == ["R007"]

    def test_derive_rng_stream_is_clean(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "clean.py": """
                from repro.utils.rng import derive_rng

                def sample(seed, n):
                    rng = derive_rng(seed)
                    return rng.normal(size=n)
                """,
        }, select=["R007"])
        assert findings == []

    def test_rng_parameter_is_trusted(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "param.py": """
                def sample(rng, n):
                    return rng.uniform(size=n)
                """,
        }, select=["R007"])
        assert findings == []

    def test_trusted_rng_module_is_exempt(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "utils/__init__.py": "",
            "utils/rng.py": """
                import numpy as np

                def derive_rng(seed):
                    return np.random.default_rng(seed)
                """,
        }, select=["R007"])
        assert findings == []

    def test_helper_returning_derived_stream_is_clean(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "blessed.py": """
                from repro.utils.rng import derive_rng

                def make_stream(seed):
                    return derive_rng(seed)

                def sample(seed):
                    rng = make_stream(seed)
                    return rng.normal(size=2)
                """,
        }, select=["R007"])
        assert findings == []


class TestR008DeadCode:
    def test_flags_unreferenced_public_function(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "mod.py": """
                def used():
                    return 1

                def dead():
                    return 2

                VALUE = used()
                """,
        }, select=["R008"])
        assert rule_ids(findings) == ["R008"]
        assert "'dead'" in findings[0].message

    def test_cross_file_reference_counts(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "a.py": """
                def helper():
                    return 1
                """,
            "b.py": """
                from a import helper

                TOTAL = helper()
                """,
        }, select=["R008"])
        assert findings == []

    def test_dunder_all_export_counts(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "api.py": """
                __all__ = ["exported"]

                def exported():
                    return 1
                """,
        }, select=["R008"])
        assert findings == []

    def test_recursion_does_not_count_as_use(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "rec.py": """
                def lonely(n):
                    return 0 if n <= 0 else lonely(n - 1)
                """,
        }, select=["R008"])
        assert rule_ids(findings) == ["R008"]

    def test_reference_paths_widen_the_universe_without_being_flagged(self, tmp_path):
        findings = flow_findings(tmp_path / "src", {
            "lib.py": """
                def only_tested():
                    return 1
                """,
        }, select=["R008"])
        assert rule_ids(findings) == ["R008"]

        write_tree(tmp_path / "tests", {
            "test_lib.py": """
                from lib import only_tested

                def check():
                    assert only_tested() == 1

                def test_untouched_helper_in_tests_is_not_flagged():
                    pass
                """,
        })
        findings = run_flow(
            [tmp_path / "src"],
            reference_paths=[tmp_path / "tests"],
            select=["R008"],
        )
        assert findings == []

    def test_noqa_suppresses_dead_code(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "mod.py": """
                def external_api():  # noqa: R008
                    return 1
                """,
        }, select=["R008"])
        assert findings == []


class TestR009ShapeContract:
    def test_mischained_sequential_is_flagged(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "model.py": """
                from repro.nn.layers import Linear, ReLU, Sequential

                def build():
                    return Sequential(Linear(4, 8), ReLU(), Linear(9, 1))
                """,
        }, select=["R009"])
        assert rule_ids(findings) == ["R009"]
        assert "in_features=9" in findings[0].message
        assert "width 8" in findings[0].message

    def test_matching_chain_is_clean(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "model.py": """
                from repro.nn import Linear, ReLU, Sequential, Sigmoid

                def build():
                    return Sequential(
                        Linear(4, 8), ReLU(), Linear(8, 8), ReLU(),
                        Linear(8, 1), Sigmoid(),
                    )
                """,
        }, select=["R009"])
        assert findings == []

    def test_keyword_features_are_understood(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "model.py": """
                from repro.nn import Linear, Sequential

                def build():
                    return Sequential(
                        Linear(in_features=3, out_features=5),
                        Linear(in_features=6, out_features=1),
                    )
                """,
        }, select=["R009"])
        assert rule_ids(findings) == ["R009"]

    def test_dynamic_widths_are_not_guessed(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "model.py": """
                from repro.nn import Linear, Sequential

                def build(hidden):
                    return Sequential(Linear(4, hidden), Linear(5, 1))
                """,
        }, select=["R009"])
        assert findings == []


class TestR010SpanLeak:
    def test_span_outside_with_is_flagged(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "leaky.py": """
                from repro.perf.registry import PERF

                def leaky():
                    span = PERF.span("train")
                    span.__enter__()
                    return span
                """,
        }, select=["R010"])
        assert rule_ids(findings) == ["R010"]

    def test_with_span_is_clean(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "ok.py": """
                from repro.perf.registry import PERF

                def timed():
                    with PERF.span("train"):
                        return 1
                """,
        }, select=["R010"])
        assert findings == []

    def test_aliased_import_is_resolved(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "aliased.py": """
                from repro.perf.registry import PERF as METRICS

                def leaky():
                    return METRICS.span("x")
                """,
        }, select=["R010"])
        assert rule_ids(findings) == ["R010"]


class TestR011BlockingCall:
    def test_ground_truth_count_in_server_is_flagged(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "serve/__init__.py": "",
            "serve/server.py": """
                def serve_one(executor, query):
                    return executor.count(query)
                """,
        }, select=["R011"])
        assert rule_ids(findings) == ["R011"]
        assert "'count'" in findings[0].message

    def test_execute_in_cache_is_flagged(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "serve/__init__.py": "",
            "serve/cache.py": """
                def warm(deployed, queries):
                    deployed.execute(queries)
                """,
        }, select=["R011"])
        assert rule_ids(findings) == ["R011"]

    def test_aliased_trainer_import_is_resolved(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "serve/__init__.py": "",
            "serve/server.py": """
                from repro.ce.trainer import incremental_update as refresh

                def sneaky(model, workload):
                    return refresh(model, workload)
                """,
        }, select=["R011"])
        assert rule_ids(findings) == ["R011"]
        assert "incremental_update" in findings[0].message

    def test_background_retrain_module_is_exempt(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "serve/__init__.py": "",
            "serve/retrain.py": """
                def flush(deployed, queries):
                    return deployed.execute(queries)
                """,
        }, select=["R011"])
        assert findings == []

    def test_modules_outside_serve_are_exempt(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "harness/__init__.py": "",
            "harness/server.py": """
                def run(executor, query):
                    return executor.count(query)
                """,
        }, select=["R011"])
        assert findings == []

    def test_model_only_hot_path_is_clean(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "serve/__init__.py": "",
            "serve/server.py": """
                def serve_batch(deployed, encoder, queries):
                    encodings = encoder.encode_many(queries)
                    return deployed.explain_encoded(encodings)
                """,
        }, select=["R011"])
        assert findings == []

    def test_cluster_router_is_a_hot_path(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "cluster/__init__.py": "",
            "cluster/router.py": """
                def dispatch(executor, batch):
                    return [executor.count(request.query) for request in batch]
                """,
        }, select=["R011"])
        assert rule_ids(findings) == ["R011"]
        assert "'count'" in findings[0].message

    def test_cluster_worker_is_a_hot_path(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "cluster/__init__.py": "",
            "cluster/worker.py": """
                def handle_estimate(deployed, queries):
                    return deployed.execute(queries)
                """,
        }, select=["R011"])
        assert rule_ids(findings) == ["R011"]

    def test_cluster_promotion_module_is_exempt(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "cluster/__init__.py": "",
            "cluster/promotion.py": """
                def retrain(deployed, queries):
                    return deployed.execute(queries)
                """,
        }, select=["R011"])
        assert findings == []

    def test_ops_tsdb_is_a_hot_path(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "ops/__init__.py": "",
            "ops/tsdb.py": """
                def ingest_truth(executor, query, tsdb):
                    tsdb.ingest("truth", executor.count(query))
                """,
        }, select=["R011"])
        assert rule_ids(findings) == ["R011"]
        assert "'count'" in findings[0].message

    def test_ops_detect_is_a_hot_path(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "ops/__init__.py": "",
            "ops/detect.py": """
                def verify_alarm(deployed, queries):
                    return deployed.execute(queries)
                """,
        }, select=["R011"])
        assert rule_ids(findings) == ["R011"]

    def test_ops_loop_retrain_call_is_flagged(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "ops/__init__.py": "",
            "ops/loop.py": """
                from repro.ce.trainer import incremental_update

                def tick(model, workload):
                    return incremental_update(model, workload)
                """,
        }, select=["R011"])
        assert rule_ids(findings) == ["R011"]
        assert "incremental_update" in findings[0].message

    def test_ops_actions_module_is_exempt(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "ops/__init__.py": "",
            "ops/actions.py": """
                def guarded_retrain(deployed, queries):
                    return deployed.execute(queries)
                """,
        }, select=["R011"])
        assert findings == []

    def test_ops_monitoring_only_loop_is_clean(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "ops/__init__.py": "",
            "ops/loop.py": """
                def tick(bank, tsdb):
                    return bank.sweep(tsdb)
                """,
        }, select=["R011"])
        assert findings == []


class TestR012AdhocArtifactWrite:
    def test_open_for_write_is_flagged(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "reporting.py": """
                def save(report, path):
                    with open(path, "w") as fh:
                        fh.write(str(report))
                """,
        }, select=["R012"])
        assert rule_ids(findings) == ["R012"]
        assert "open(..., 'w')" in findings[0].message
        assert "atomic" in (findings[0].hint or "")

    def test_json_dump_and_write_text_are_flagged(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "reporting.py": """
                import json
                from pathlib import Path

                def save(report, path):
                    json.dump(report, open(path))

                def save_text(report, path):
                    Path(path).write_text(str(report))
                """,
        }, select=["R012"])
        assert sorted(f.message.split(" ")[0] for f in findings) == [
            ".write_text()", "json.dump()",
        ]

    def test_reads_and_json_dumps_are_fine(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "reporting.py": """
                import json

                def load(path):
                    with open(path, "r") as fh:
                        return json.load(fh)

                def render(report):
                    return json.dumps(report, indent=2)
                """,
        }, select=["R012"])
        assert findings == []

    def test_store_package_is_exempt(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "store/__init__.py": "",
            "store/io.py": """
                def atomic_write(path, data):
                    with open(path, "wb") as fh:
                        fh.write(data)
                """,
        }, select=["R012"])
        assert findings == []

    def test_tests_and_benchmarks_are_exempt(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "tests/test_reporting.py": """
                def test_write(tmp_path):
                    (tmp_path / "x.json").write_text("{}")
                """,
            "benchmarks/record.py": """
                def record(path, data):
                    with open(path, "w") as fh:
                        fh.write(data)
                """,
        }, select=["R012"])
        assert findings == []

    def test_mode_keyword_is_resolved(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "reporting.py": """
                def append(path, line):
                    with open(path, mode="a") as fh:
                        fh.write(line)
                """,
        }, select=["R012"])
        assert rule_ids(findings) == ["R012"]

    def test_suppression_comment_is_honored(self, tmp_path):
        findings = flow_findings(tmp_path, {
            "reporting.py": """
                def save(path, data):
                    with open(path, "w") as fh:  # noqa: R012
                        fh.write(data)
                """,
        }, select=["R012"])
        assert findings == []


class TestProgramModel:
    def test_symbols_and_references_are_indexed(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                class Widget:
                    def spin(self):
                        return 1

                def run():
                    return Widget().spin()
                """,
        })
        program = build_program([tmp_path])
        assert "pkg.mod.Widget.spin" in program.functions
        assert "pkg.mod.run" in program.functions
        assert any(ref.module == "pkg.mod" for ref in program.references["spin"])

    def test_repo_is_flow_clean(self):
        """The acceptance gate: R007-R011 hold over the package itself."""
        from pathlib import Path

        package = Path(__file__).resolve().parents[2] / "src" / "repro"
        repo = package.parents[1]
        references = [
            path
            for path in (repo / "tests", repo / "benchmarks", repo / "examples")
            if path.exists()
        ]
        findings = run_flow([package], reference_paths=references)
        assert findings == [], "\n".join(
            f"{f.rule_id} {f.path}:{f.line} {f.message}" for f in findings
        )
