"""Graph sanitizer: provenance of non-finite values, scopes, smoke pass."""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.analysis.smoke import run_smoke
from repro.nn import (
    SanitizeError,
    Sequential,
    Linear,
    Tanh,
    Tensor,
    grad,
    is_sanitize_enabled,
    mlp,
    mse_loss,
    no_grad,
    sanitize,
    sanitize_scope,
)
from repro.nn.tensor import is_grad_enabled, sanitize_check_count


class TestToggle:
    def test_off_by_default_and_scoped_on(self):
        assert not is_sanitize_enabled()
        with sanitize():
            assert is_sanitize_enabled()
        assert not is_sanitize_enabled()

    def test_disabled_mode_does_not_raise(self):
        # Without sanitize(), non-finite values propagate silently (the
        # historical behavior stays the default).
        with np.errstate(invalid="ignore"):
            out = Tensor([-1.0], requires_grad=True).log()
        assert np.isnan(out.data).all()

    def test_checks_are_counted(self):
        before = sanitize_check_count()
        with sanitize():
            Tensor([1.0]) + Tensor([2.0])
        assert sanitize_check_count() > before

    def test_env_flag_enables_sanitizer(self):
        env = dict(os.environ, REPRO_SANITIZE="1")
        env["PYTHONPATH"] = "src"
        code = (
            "from repro.nn import Tensor, SanitizeError\n"
            "import numpy as np\n"
            "try:\n"
            "    with np.errstate(invalid='ignore'):\n"
            "        Tensor([-1.0]).log()\n"
            "except SanitizeError as exc:\n"
            "    raise SystemExit(0 if exc.op == 'log' else 2)\n"
            "raise SystemExit(1)\n"
        )
        result = subprocess.run([sys.executable, "-c", code], env=env)
        assert result.returncode == 0


class TestForwardProvenance:
    def test_log_of_negative_names_the_op(self):
        with sanitize(), np.errstate(invalid="ignore"):
            with pytest.raises(SanitizeError) as exc_info:
                Tensor([-1.0, 2.0], requires_grad=True).log()
        err = exc_info.value
        assert err.op == "log"
        assert err.phase == "forward"
        assert err.shapes == ((2,),)
        assert "produced non-finite" in str(err)

    def test_nan_injected_midgraph_is_attributed_to_consuming_op(self):
        with sanitize(), np.errstate(invalid="ignore"):
            poisoned = Tensor(np.array([[1.0, np.nan]]), requires_grad=True)
            weight = Tensor(np.ones((2, 3)), requires_grad=True)
            with pytest.raises(SanitizeError) as exc_info:
                poisoned @ weight
        err = exc_info.value
        assert err.op == "matmul"
        assert "consumed an already non-finite input" in str(err)

    def test_overflowing_exp_names_the_op(self):
        with sanitize(), np.errstate(over="ignore"):
            with pytest.raises(SanitizeError) as exc_info:
                Tensor([1000.0], requires_grad=True).exp()
        assert exc_info.value.op == "exp"
        assert "inf" in str(exc_info.value)

    def test_layer_context_is_reported(self):
        with sanitize(), np.errstate(invalid="ignore"):
            model = Sequential(Linear(3, 4, rng=0), Tanh(), Linear(4, 1, rng=1))
            bad = Tensor(np.full((2, 3), np.inf), requires_grad=True)
            with pytest.raises(SanitizeError) as exc_info:
                model(bad)
        assert "Sequential" in exc_info.value.context

    def test_scope_labels_nest(self):
        with sanitize(), np.errstate(invalid="ignore"):
            with sanitize_scope("outer"), sanitize_scope("inner"):
                with pytest.raises(SanitizeError) as exc_info:
                    Tensor([-1.0], requires_grad=True).log()
        assert exc_info.value.context == "outer > inner"


class TestBackwardProvenance:
    def test_infinite_gradient_names_op_and_phase(self):
        # d/dx sqrt(x) = 0.5 / sqrt(x) -> inf at x = 0: the forward value
        # is finite, only the backward rule blows up.
        with sanitize(), np.errstate(divide="ignore"):
            x = Tensor([0.0, 4.0], requires_grad=True)
            y = (x ** 0.5).sum()
            with pytest.raises(SanitizeError) as exc_info:
                y.backward()
        err = exc_info.value
        assert err.op == "pow"
        assert err.phase == "backward"

    def test_taped_backward_is_checked_too(self):
        with sanitize(), np.errstate(divide="ignore"):
            x = Tensor([0.0, 4.0], requires_grad=True)
            y = (x ** 0.5).sum()
            with pytest.raises(SanitizeError):
                grad(y, [x], create_graph=True)


class TestCleanPaths:
    def test_training_shaped_graph_passes(self):
        with sanitize():
            model = mlp(4, [6], 1, rng=3)
            x = Tensor.randn((5, 4), np.random.default_rng(0), requires_grad=True)
            loss = mse_loss(model(x), Tensor(np.zeros((5, 1))))
            loss.backward()
        assert loss.item() >= 0.0

    def test_grad_toggle_is_reported(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestSmoke:
    def test_run_smoke_passes_and_counts_checks(self):
        result = run_smoke(seed=0)
        assert result.passed, result.detail
        assert result.checks > 0
        assert result.modules >= 4  # Sequential + 3 Linears at minimum

    def test_run_smoke_is_deterministic(self):
        assert run_smoke(seed=7) == run_smoke(seed=7)

    def test_as_dict_round_trips(self):
        payload = run_smoke(seed=0).as_dict()
        assert payload["passed"] is True
        assert set(payload) == {"passed", "checks", "modules", "detail"}
