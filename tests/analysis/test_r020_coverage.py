"""R020 compile-site-coverage: every compiled_call site reaches a gate."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.flow import run_flow

def write_tree(root, files):
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


@pytest.fixture
def coverage(tmp_path):
    def run(files, reference=None):
        write_tree(tmp_path, files)
        reference_paths = [tmp_path / r for r in reference] if reference else []
        return run_flow(
            [tmp_path], reference_paths=reference_paths, select=["R020"]
        )

    return run


class TestUncoveredSites:
    def test_site_with_no_reference_chain_is_flagged(self, coverage):
        findings = coverage({
            "sites.py": """
                from repro.nn.compile.api import compiled_call

                def covered():
                    compiled_call(("app.covered",), None, [])

                def orphan():
                    compiled_call(("app.orphan",), None, [])
                """,
            "gate.py": """
                from sites import covered

                def run_equivalence():
                    covered()
                """,
        })
        assert [f.rule_id for f in findings] == ["R020"]
        assert "app.orphan" in findings[0].message
        assert "orphan" in findings[0].message

    def test_module_level_site_is_flagged(self, coverage):
        findings = coverage({
            "sites.py": """
                from repro.nn.compile.api import compiled_call

                compiled_call(("app.toplevel",), None, [])

                def run_equivalence():
                    pass
                """,
        })
        assert [f.rule_id for f in findings] == ["R020"]
        assert "at module level" in findings[0].message

    def test_every_site_flagged_when_no_gate_exists(self, coverage):
        findings = coverage({
            "sites.py": """
                from repro.nn.compile.api import compiled_call

                def first():
                    compiled_call(("app.first",), None, [])

                def second():
                    compiled_call(("app.second",), None, [])
                """,
        })
        assert [f.rule_id for f in findings] == ["R020", "R020"]

    def test_stale_safe_annotation_is_audited(self, coverage):
        findings = coverage({
            "sites.py": """
                from repro.nn.compile.api import compiled_call

                def run_equivalence():
                    covered()

                def covered():  # safe: R020 exercised by a dedicated test
                    compiled_call(("app.covered",), None, [])
                """,
        })
        # The site is reachable, so the annotation suppresses nothing.
        assert [f.rule_id for f in findings] == ["E997"]


class TestCoveredSites:
    def test_directly_called_site_is_clean(self, coverage):
        findings = coverage({
            "sites.py": """
                from repro.nn.compile.api import compiled_call

                def helper():
                    compiled_call(("app.helper",), None, [])

                def run_equivalence():
                    helper()
                """,
        })
        assert findings == []

    def test_transitively_reached_site_is_clean(self, coverage):
        findings = coverage({
            "sites.py": """
                from repro.nn.compile.api import compiled_call

                def inner():
                    compiled_call(("app.inner",), None, [])

                def outer():
                    return inner()
                """,
            "gate.py": """
                from sites import outer

                def run_compiled_gradcheck():
                    outer()
                """,
        })
        assert findings == []

    def test_attribute_aliased_dispatch_is_clean(self, coverage):
        # Harness-style aliasing: the gate never names the function
        # directly, only as a bound attribute — the over-approximate
        # name edge must keep the site covered.
        findings = coverage({
            "sites.py": """
                from repro.nn.compile.api import compiled_call

                class Session:
                    def helper(self):
                        compiled_call(("app.session",), None, [])
                """,
            "gate.py": """
                from sites import Session

                def run_equivalence():
                    harness = Session()
                    harness.helper()
                """,
        })
        assert findings == []

    def test_safe_annotation_suppresses_an_uncovered_site(self, coverage):
        findings = coverage({
            "sites.py": """
                from repro.nn.compile.api import compiled_call

                def run_equivalence():
                    pass

                def orphan():
                    compiled_call(("app.orphan",), None, [])  # safe: R020 verified by a dedicated reject-path test
                """,
        })
        assert findings == []
