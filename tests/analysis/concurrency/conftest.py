"""Shared fixture-tree helpers for the concurrency-rule tests."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.flow import run_flow


def write_tree(root, files: dict[str, str]):
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


@pytest.fixture
def flow(tmp_path):
    """``flow(files, select=[...])`` -> findings over a throwaway tree."""

    def run(files, select=None, reference=None):
        write_tree(tmp_path, files)
        reference_paths = [tmp_path / r for r in reference] if reference else []
        return run_flow([tmp_path], reference_paths=reference_paths, select=select)

    return run


def rule_ids(findings):
    return [f.rule_id for f in findings]
