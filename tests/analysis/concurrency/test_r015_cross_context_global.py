"""R015: mutable globals written from more than one execution context."""

from __future__ import annotations

from tests.analysis.concurrency.conftest import rule_ids


GRID = """
    import multiprocessing as mp

    from state import record, reset

    def job(x):
        record(x)
        return x

    def run(jobs):
        reset()
        with mp.Pool(2) as pool:
            return pool.map(job, jobs)
    """


class TestPositives:
    def test_module_global_written_from_main_and_worker(self, flow):
        findings = flow({
            "state.py": """
                RESULTS = []

                def record(x):
                    RESULTS.append(x)

                def reset():
                    global RESULTS
                    RESULTS = []
                """,
            "grid.py": GRID,
        }, select=["R015"])
        assert "R015" in rule_ids(findings)
        assert any(f.path.endswith("state.py") for f in findings)

    def test_lru_cache_on_multi_context_function(self, flow):
        findings = flow({
            "state.py": """
                import functools

                @functools.lru_cache(maxsize=None)
                def record(x):
                    return x * 2

                def reset():
                    record.cache_clear()
                """,
            "grid.py": GRID,
        }, select=["R015"])
        assert "R015" in rule_ids(findings)

    def test_class_level_cache_attr_written_cross_context(self, flow):
        findings = flow({
            "state.py": """
                class Recorder:
                    def __init__(self):
                        self._seen = {}

                    def add(self, x):
                        self._seen[x] = True

                RECORDER = Recorder()

                def record(x):
                    RECORDER.add(x)

                def reset():
                    RECORDER.add(-1)
                """,
            "grid.py": GRID,
        }, select=["R015"])
        assert "R015" in rule_ids(findings)


class TestNegatives:
    def test_lock_guarded_write_is_clean(self, flow):
        findings = flow({
            "state.py": """
                import threading

                _GUARD = threading.Lock()
                RESULTS = []

                def record(x):
                    with _GUARD:
                        RESULTS.append(x)

                def reset():
                    with _GUARD:
                        RESULTS.clear()
                """,
            "grid.py": GRID,
        }, select=["R015"])
        assert findings == []

    def test_safe_annotation_suppresses_the_finding(self, flow):
        findings = flow({
            "state.py": """
                RESULTS = []  # safe: R015 each worker accumulates privately; the parent never reads these back

                def record(x):
                    RESULTS.append(x)

                def reset():
                    global RESULTS
                    RESULTS = []
                """,
            "grid.py": GRID,
        }, select=["R013", "R014", "R015", "R016"])
        assert findings == []

    def test_single_context_global_is_clean(self, flow):
        findings = flow({
            "state.py": """
                HISTORY = []

                def observe(x):
                    HISTORY.append(x)

                def main():
                    observe(1)
                    observe(2)
                """,
        }, select=["R015"])
        assert findings == []
