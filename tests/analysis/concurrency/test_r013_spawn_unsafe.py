"""R013: spawn-unsafe arguments crossing a process boundary."""

from __future__ import annotations

from tests.analysis.concurrency.conftest import rule_ids


class TestPositives:
    def test_lambda_payload_is_flagged(self, flow):
        findings = flow({
            "grid.py": """
                import multiprocessing as mp

                def run(jobs):
                    with mp.Pool(2) as pool:
                        return pool.map(lambda j: j + 1, jobs)
                """,
        }, select=["R013"])
        assert rule_ids(findings) == ["R013"]
        assert "lambda" in findings[0].message

    def test_open_handle_in_initargs_is_flagged(self, flow):
        findings = flow({
            "grid.py": """
                import multiprocessing as mp

                def setup(log):
                    pass

                def job(x):
                    return x

                def run(jobs):
                    handle = open("grid.log", "a")
                    with mp.Pool(2, initializer=setup, initargs=(handle,)) as pool:
                        return pool.map(job, jobs)
                """,
        }, select=["R013"])
        assert rule_ids(findings) == ["R013"]
        assert "open" in findings[0].message

    def test_lock_passed_to_worker_is_flagged(self, flow):
        findings = flow({
            "grid.py": """
                import multiprocessing as mp
                import threading

                def job(args):
                    return args

                def run(jobs):
                    guard = threading.Lock()
                    with mp.Pool(2) as pool:
                        return pool.starmap(job, [(guard, j) for j in jobs])
                """,
        }, select=["R013"])
        assert rule_ids(findings) == ["R013"]

    def test_open_handle_in_process_args_is_flagged(self, flow):
        # The cluster's worker-spawn boundary: ctx.Process(target=...,
        # args=...) is audited exactly like a Pool submission.
        findings = flow({
            "cluster.py": """
                import multiprocessing as mp

                def worker_main(connection, log):
                    pass

                def spawn():
                    ctx = mp.get_context("spawn")
                    log = open("worker.log", "a")
                    parent, child = ctx.Pipe()
                    proc = ctx.Process(target=worker_main, args=(child, log))
                    proc.start()
                """,
        }, select=["R013"])
        assert rule_ids(findings) == ["R013"]
        assert "open" in findings[0].message

    def test_lambda_process_target_is_flagged(self, flow):
        findings = flow({
            "cluster.py": """
                import multiprocessing as mp

                def spawn():
                    ctx = mp.get_context("spawn")
                    proc = ctx.Process(target=lambda: None, args=())
                    proc.start()
                """,
        }, select=["R013"])
        assert rule_ids(findings) == ["R013"]
        assert "lambda" in findings[0].message

    def test_live_autograd_tensor_through_helper_is_flagged(self, flow):
        findings = flow({
            "tensor.py": """
                class Tensor:
                    def __init__(self, data, requires_grad=False):
                        self.data = data
                        self.requires_grad = requires_grad
                """,
            "grid.py": """
                import multiprocessing as mp

                from tensor import Tensor

                def make_batch():
                    return Tensor([1.0, 2.0], requires_grad=True)

                def job(t):
                    return t

                def run():
                    batch = make_batch()
                    with mp.Pool(2) as pool:
                        return pool.apply(job, (batch,))
                """,
        }, select=["R013"])
        assert rule_ids(findings) == ["R013"]


class TestNegatives:
    def test_plain_data_payload_is_clean(self, flow):
        findings = flow({
            "grid.py": """
                import multiprocessing as mp

                def job(x):
                    return x * 2

                def run(jobs):
                    with mp.Pool(2) as pool:
                        return pool.map(job, [1, 2, 3])
                """,
        }, select=["R013"])
        assert findings == []

    def test_detached_tensor_is_clean(self, flow):
        findings = flow({
            "tensor.py": """
                class Tensor:
                    def __init__(self, data, requires_grad=False):
                        self.data = data
                        self.requires_grad = requires_grad
                """,
            "grid.py": """
                import multiprocessing as mp

                from tensor import Tensor

                def job(t):
                    return t

                def run():
                    batch = Tensor([1.0, 2.0])
                    with mp.Pool(2) as pool:
                        return pool.apply(job, (batch,))
                """,
        }, select=["R013"])
        assert findings == []

    def test_plain_data_worker_spec_through_process_is_clean(self, flow):
        # WorkerSpec-style frozen plain data is exactly what should cross
        # the spawn boundary.
        findings = flow({
            "cluster.py": """
                import multiprocessing as mp
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class WorkerSpec:
                    worker_id: int
                    store_root: str
                    tenants: tuple

                def worker_main(connection, spec):
                    pass

                def spawn(spec_args):
                    ctx = mp.get_context("spawn")
                    spec = WorkerSpec(0, "store", ("tenant-a",))
                    parent, child = ctx.Pipe()
                    proc = ctx.Process(target=worker_main, args=(child, spec))
                    proc.start()
                """,
        }, select=["R013"])
        assert findings == []

    def test_thread_target_takes_locks_without_findings(self, flow):
        # Threads share the address space: a Lock is the *correct* thing
        # to hand a thread, and must not be confused with a process spawn.
        findings = flow({
            "serve.py": """
                import threading

                def loop(guard):
                    with guard:
                        pass

                def run():
                    guard = threading.Lock()
                    worker = threading.Thread(target=loop, args=(guard,))
                    worker.start()
                """,
        }, select=["R013"])
        assert findings == []

    def test_strings_and_tuples_in_initargs_are_clean(self, flow):
        findings = flow({
            "grid.py": """
                import multiprocessing as mp

                def setup(name, limits):
                    pass

                def job(x):
                    return x

                def run(jobs):
                    with mp.Pool(2, initializer=setup,
                                 initargs=("grid", (1, 2))) as pool:
                        return pool.map(job, jobs)
                """,
        }, select=["R013"])
        assert findings == []
