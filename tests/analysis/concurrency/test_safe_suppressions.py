"""The '# safe:' structured suppression: parsing, E997/E998, edge cases."""

from __future__ import annotations

from tests.analysis.concurrency.conftest import rule_ids

RACY = """
    import multiprocessing as mp

    RESULTS = []{annotation}

    def record(x):
        RESULTS.append(x)

    def job(x):
        record(x)
        return x

    def run(jobs):
        record(-1)
        with mp.Pool(2) as pool:
            return pool.map(job, jobs)
    """


def test_well_formed_safe_suppresses_and_is_load_bearing(flow):
    findings = flow({
        "grid.py": RACY.format(
            annotation="  # safe: R015 workers accumulate privately and are never read back"
        ),
    }, select=["R013", "R014", "R015", "R016"])
    assert findings == []


def test_bare_safe_without_reason_is_malformed(flow):
    findings = flow({
        "grid.py": RACY.format(annotation="  # safe: R015"),
    }, select=["R013", "R014", "R015", "R016"])
    ids = rule_ids(findings)
    assert "E998" in ids  # malformed — no reason given
    assert "R015" in ids  # and the suppression did NOT take effect


def test_safe_without_rule_ids_is_malformed(flow):
    findings = flow({
        "grid.py": RACY.format(annotation="  # safe: trust me"),
    }, select=["R013", "R014", "R015", "R016"])
    assert "E998" in rule_ids(findings)


def test_unused_safe_is_reported_as_e997(flow):
    findings = flow({
        "calm.py": """
            LIMIT = 10  # safe: R015 nothing writes this concurrently

            def main():
                return LIMIT
            """,
    }, select=["R013", "R014", "R015", "R016"])
    assert rule_ids(findings) == ["E997"]
    assert "suppresses nothing" in findings[0].message


def test_safe_naming_wrong_rule_does_not_suppress(flow):
    findings = flow({
        "grid.py": RACY.format(
            annotation="  # safe: R013 workers accumulate privately"
        ),
    }, select=["R013", "R014", "R015", "R016"])
    ids = rule_ids(findings)
    assert "R015" in ids  # the real finding survives
    assert "E997" in ids  # and the mis-targeted annotation is stale


def test_safe_inside_docstring_is_not_an_annotation(flow):
    findings = flow({
        "docs.py": '''
            def explain():
                """Annotate shared state like this:

                    RESULTS = []  # safe: R015 workers never share

                The reason is mandatory.
                """
                return 1
            ''',
    }, select=["R013", "R014", "R015", "R016"])
    assert findings == []


def test_multi_rule_safe_covers_both_rules(flow):
    findings = flow({
        "timing.py": """
            import multiprocessing as mp
            import time

            _clock = time.perf_counter  # safe: R015, R016 the pool initializer reinstalls the clock per worker

            def install(fn):
                global _clock
                _clock = fn

            def job(x):
                install(time.monotonic)
                return x

            def run(jobs):
                install(time.perf_counter)
                with mp.Pool(2) as pool:
                    return pool.map(job, jobs)
            """,
    }, select=["R013", "R014", "R015", "R016"])
    assert findings == []
