"""The dynamic 2-worker cross-check behind ``pace-repro analyze``.

The smoke spawns a real forked pool, traces every line the workers
execute, and fails if any observed cross-process write site was not
statically labeled worker-reachable by the context pass. This is the
acceptance gate for the whole context-inference call graph: a missing
edge (a dispatch table, a ``super().__init__``, an operator dunder)
shows up here as an unlabeled site.
"""

from __future__ import annotations

from repro.analysis.concurrency.smoke import TraceSmokeResult, run_trace_smoke


def test_every_observed_worker_write_is_statically_labeled():
    result = run_trace_smoke(seed=0, workers=2)
    assert result.passed, result.detail
    assert result.unlabeled == ()
    assert result.observed > 0  # the tracer actually saw worker writes
    assert result.labeled == result.observed
    assert result.workers == 2


def test_result_serializes_for_the_json_report():
    result = TraceSmokeResult(
        passed=False,
        observed=3,
        labeled=2,
        workers=2,
        unlabeled=("src/repro/x.py:10",),
        detail="1 unlabeled site",
    )
    payload = result.as_dict()
    assert payload["passed"] is False
    assert tuple(payload["unlabeled"]) == ("src/repro/x.py:10",)
