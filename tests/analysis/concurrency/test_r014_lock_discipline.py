"""R014: lock-order cycles and blocking calls under a held lock."""

from __future__ import annotations

from tests.analysis.concurrency.conftest import rule_ids


class TestPositives:
    def test_opposite_acquisition_order_is_a_cycle(self, flow):
        findings = flow({
            "buffers.py": """
                import threading

                lock_a = threading.Lock()
                lock_b = threading.Lock()

                def forward():
                    with lock_a:
                        with lock_b:
                            pass

                def backward():
                    with lock_b:
                        with lock_a:
                            pass
                """,
        }, select=["R014"])
        assert "R014" in rule_ids(findings)
        assert any("cycle" in f.message for f in findings)

    def test_interprocedural_cycle_through_helper(self, flow):
        findings = flow({
            "buffers.py": """
                import threading

                lock_a = threading.Lock()
                lock_b = threading.Lock()

                def _inner():
                    with lock_a:
                        pass

                def forward():
                    with lock_a:
                        with lock_b:
                            pass

                def backward():
                    with lock_b:
                        _inner()
                """,
        }, select=["R014"])
        assert "R014" in rule_ids(findings)

    def test_sleep_under_lock_is_flagged(self, flow):
        findings = flow({
            "serve.py": """
                import threading
                import time

                guard = threading.Lock()

                def flush():
                    with guard:
                        time.sleep(1.0)
                """,
        }, select=["R014"])
        assert rule_ids(findings) == ["R014"]
        assert "blocking" in findings[0].message

    def test_ground_truth_execution_under_lock_is_flagged(self, flow):
        findings = flow({
            "serve.py": """
                import threading

                guard = threading.Lock()

                def retrain(executor, queries):
                    with guard:
                        return executor.execute(queries)
                """,
        }, select=["R014"])
        assert rule_ids(findings) == ["R014"]


class TestNegatives:
    def test_consistent_order_is_clean(self, flow):
        findings = flow({
            "buffers.py": """
                import threading

                lock_a = threading.Lock()
                lock_b = threading.Lock()

                def forward():
                    with lock_a:
                        with lock_b:
                            pass

                def also_forward():
                    with lock_a:
                        with lock_b:
                            pass
                """,
        }, select=["R014"])
        assert findings == []

    def test_blocking_call_with_lock_released_is_clean(self, flow):
        findings = flow({
            "serve.py": """
                import threading

                guard = threading.Lock()
                buffer = []

                def flush(executor):
                    with guard:
                        queries = list(buffer)
                    return executor.execute(queries)
                """,
        }, select=["R014"])
        assert findings == []

    def test_single_lock_reused_everywhere_is_clean(self, flow):
        findings = flow({
            "serve.py": """
                import threading

                guard = threading.Lock()

                def observe(x, log):
                    with guard:
                        log.append(x)

                def drain(log):
                    with guard:
                        log.clear()
                """,
        }, select=["R014"])
        assert findings == []

    def test_safe_annotated_blocking_call_is_suppressed(self, flow):
        findings = flow({
            "serve.py": """
                import threading

                guard = threading.Lock()

                def retrain(executor, queries):
                    with guard:
                        return executor.execute(queries)  # safe: R014 one retrain round is a single critical section by design
                """,
        }, select=["R013", "R014", "R015", "R016"])
        assert findings == []
