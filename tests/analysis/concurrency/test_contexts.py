"""Unit tests for the process/thread execution-context inference pass."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.concurrency.contexts import (
    CONTEXT_BACKGROUND,
    CONTEXT_MAIN,
    CONTEXT_WORKER,
    infer_contexts,
    iter_process_boundaries,
)
from repro.analysis.flow.program import build_program
from tests.analysis.concurrency.conftest import write_tree


def contexts_for(tmp_path, files):
    write_tree(tmp_path, files)
    program = build_program([tmp_path])
    return program, infer_contexts(program)


def test_pool_map_target_is_worker_seeded(tmp_path):
    _, cmap = contexts_for(tmp_path, {
        "grid.py": """
            import multiprocessing as mp

            def job(x):
                return x

            def run(jobs):
                with mp.Pool(2) as pool:
                    return pool.map(job, jobs)
            """,
    })
    assert cmap.reaches("grid.job", CONTEXT_WORKER)
    assert cmap.of("grid.run") == {CONTEXT_MAIN}


def test_pool_initializer_is_worker_seeded(tmp_path):
    _, cmap = contexts_for(tmp_path, {
        "grid.py": """
            import multiprocessing as mp

            def setup(seed):
                pass

            def job(x):
                return x

            def run(jobs):
                with mp.Pool(2, initializer=setup, initargs=(0,)) as pool:
                    return pool.map(job, jobs)
            """,
    })
    assert cmap.reaches("grid.setup", CONTEXT_WORKER)


def test_thread_target_is_background_not_worker(tmp_path):
    _, cmap = contexts_for(tmp_path, {
        "serve.py": """
            import threading

            def loop():
                pass

            def start():
                threading.Thread(target=loop, daemon=True).start()
            """,
    })
    assert cmap.of("serve.loop") == {CONTEXT_BACKGROUND}


def test_retrain_loop_entrypoints_are_background(tmp_path):
    _, cmap = contexts_for(tmp_path, {
        "retrain.py": """
            class RetrainLoop:
                def poll(self):
                    self._drain()

                def _drain(self):
                    pass
            """,
    })
    assert cmap.reaches("retrain.RetrainLoop.poll", CONTEXT_BACKGROUND)
    assert cmap.reaches("retrain.RetrainLoop._drain", CONTEXT_BACKGROUND)


def test_contexts_propagate_through_helpers(tmp_path):
    _, cmap = contexts_for(tmp_path, {
        "grid.py": """
            import multiprocessing as mp

            def leaf():
                return 1

            def helper():
                return leaf()

            def job(x):
                return helper()

            def run(jobs):
                helper()
                with mp.Pool(2) as pool:
                    return pool.map(job, jobs)
            """,
    })
    assert cmap.of("grid.helper") == {CONTEXT_MAIN, CONTEXT_WORKER}
    assert cmap.is_multi_context("grid.leaf")


def test_super_call_edges_reach_base_method(tmp_path):
    _, cmap = contexts_for(tmp_path, {
        "models.py": """
            import multiprocessing as mp

            class Base:
                def __init__(self):
                    self.ready = True

            class Child(Base):
                def __init__(self):
                    super().__init__()

            def job(x):
                return Child()

            def run(jobs):
                with mp.Pool(2) as pool:
                    return pool.map(job, jobs)
            """,
    })
    assert cmap.reaches("models.Base.__init__", CONTEXT_WORKER)


def test_dispatch_table_edges_reach_registered_functions(tmp_path):
    _, cmap = contexts_for(tmp_path, {
        "models.py": """
            import multiprocessing as mp

            def build_fcn():
                return "fcn"

            def build_mscn():
                return "mscn"

            REGISTRY = {"fcn": build_fcn, "mscn": build_mscn}

            def job(kind):
                builder = REGISTRY[kind]
                return builder()

            def run(jobs):
                with mp.Pool(2) as pool:
                    return pool.map(job, jobs)
            """,
    })
    assert cmap.reaches("models.build_fcn", CONTEXT_WORKER)
    assert cmap.reaches("models.build_mscn", CONTEXT_WORKER)


def test_imported_singleton_method_edge(tmp_path):
    _, cmap = contexts_for(tmp_path, {
        "perfmod.py": """
            class SpanRegistry:
                def record(self, span):
                    pass

            PERF = SpanRegistry()
            """,
        "grid.py": """
            import multiprocessing as mp

            from perfmod import PERF

            def job(x):
                PERF.record(x)
                return x

            def run(jobs):
                with mp.Pool(2) as pool:
                    return pool.map(job, jobs)
            """,
    })
    assert cmap.reaches("perfmod.SpanRegistry.record", CONTEXT_WORKER)


def test_boundary_calls_record_payloads(tmp_path):
    program, cmap = contexts_for(tmp_path, {
        "grid.py": """
            import multiprocessing as mp

            def job(x):
                return x

            def run(jobs):
                with mp.Pool(2) as pool:
                    return pool.map(job, jobs)
            """,
    })
    boundaries = list(iter_process_boundaries(program))
    fanouts = [b for b in boundaries if b.kind == "pool-fanout"]
    assert len(fanouts) == 1
    assert fanouts[0].crosses_process
    assert [t.qualname for t in fanouts[0].targets] == ["grid.job"]
    assert fanouts[0].payloads  # the iterable crossing the pickle boundary


def test_describe_names_the_seed(tmp_path):
    _, cmap = contexts_for(tmp_path, {
        "grid.py": """
            import multiprocessing as mp

            def job(x):
                return x

            def run(jobs):
                with mp.Pool(2) as pool:
                    return pool.map(job, jobs)
            """,
    })
    description = cmap.describe("grid.job")
    assert "grid-worker" in description


def test_context_map_is_memoized_per_program(tmp_path):
    program, cmap = contexts_for(tmp_path, {
        "mod.py": """
            def main():
                pass
            """,
    })
    assert infer_contexts(program) is cmap
