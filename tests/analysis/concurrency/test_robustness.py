"""Degenerate inputs degrade to reported findings — never to a crash."""

from __future__ import annotations

from repro.analysis import run_lint
from repro.analysis.flow import run_flow
from repro.analysis.flow.program import build_program
from tests.analysis.concurrency.conftest import rule_ids, write_tree


def test_syntax_error_file_is_reported_not_raised(tmp_path, flow):
    write_tree(tmp_path, {
        "broken.py": """
            def half_a_function(
            """,
    })
    findings = run_lint([tmp_path])
    assert "E999" in rule_ids(findings)
    # flow analysis simply excludes the unparseable module
    assert run_flow([tmp_path]) == []


def test_syntax_error_neighbour_does_not_hide_real_findings(flow):
    findings = flow({
        "broken.py": "def nope(:\n",
        "grid.py": """
            import multiprocessing as mp

            def run(jobs):
                with mp.Pool(2) as pool:
                    return pool.map(lambda j: j, jobs)
            """,
    }, select=["R013"])
    assert rule_ids(findings) == ["R013"]


def test_empty_file_is_clean_everywhere(tmp_path):
    (tmp_path / "empty.py").write_text("")
    (tmp_path / "blank.py").write_text("\n\n\n")
    assert run_flow([tmp_path]) == []
    assert run_lint([tmp_path]) == []


def test_file_with_only_comments_is_clean(tmp_path):
    (tmp_path / "notes.py").write_text("# just a comment\n# safe: not here\n")
    findings = run_flow([tmp_path], select=["R013", "R014", "R015", "R016"])
    # the malformed '# safe:' is still reported, but nothing crashes
    assert rule_ids(findings) == ["E998"]


def test_undecodable_file_is_skipped_not_raised(tmp_path):
    (tmp_path / "binary.py").write_bytes(b"\x00\xff\xfe invalid \x80utf8")
    assert run_flow([tmp_path]) == []


def test_safe_on_continuation_line_does_not_crash(flow):
    # The annotation sits on a *continuation* line of the definition.
    # Anchoring is to the statement's first line, so the note is stale
    # (E997) and the finding survives — degraded, never crashed.
    findings = flow({
        "grid.py": """
            import multiprocessing as mp

            RESULTS = [
            ]  # safe: R015 workers accumulate privately

            def record(x):
                RESULTS.append(x)

            def job(x):
                record(x)
                return x

            def run(jobs):
                record(-1)
                with mp.Pool(2) as pool:
                    return pool.map(job, jobs)
            """,
    }, select=["R013", "R014", "R015", "R016"])
    assert set(rule_ids(findings)) <= {"R015", "E997"}
    assert findings  # degraded to findings, not silence or a crash


def test_noqa_on_continuation_line_is_inert_not_fatal(tmp_path):
    write_tree(tmp_path, {
        "mod.py": """
            import os

            VALUE = (
                1  # noqa: R001
            )
            """,
    })
    findings = run_lint([tmp_path])
    assert all(f.rule_id != "E999" for f in findings)  # parsed fine


def test_program_builder_tolerates_mixed_garbage(tmp_path):
    write_tree(tmp_path, {
        "ok.py": """
            def fine():
                return 1
            """,
        "broken.py": "class Unclosed(:\n",
    })
    (tmp_path / "empty.py").write_text("")
    program = build_program([tmp_path])
    assert "ok" in program.modules
    assert "empty" in program.modules
    assert "broken" not in program.modules
