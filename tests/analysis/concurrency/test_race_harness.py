"""Deterministic race fixtures: the dynamic side of R013-R016.

Each fixture *forces* the interleaving a rule warns about — with
barriers and bounded try-acquires, never timing luck — and then shows
the disciplined variant is sound. Together with the static tests these
prove the rules flag real failure modes, not stylistic preferences.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from tests.analysis.concurrency.conftest import rule_ids


class TestLostUpdate:
    """R015's failure mode: unguarded read-modify-write on shared state."""

    def test_barrier_forced_lost_update(self):
        state = {"count": 0}
        barrier = threading.Barrier(2)

        def bump():
            observed = state["count"]  # both threads read 0...
            barrier.wait(timeout=5)  # ...provably before either writes
            state["count"] = observed + 1

        threads = [threading.Thread(target=bump) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert state["count"] == 1  # one increment was lost, deterministically

    def test_lock_guarded_updates_all_land(self):
        state = {"count": 0}
        guard = threading.Lock()
        started = threading.Barrier(2)

        def bump():
            started.wait(timeout=5)
            with guard:
                state["count"] += 1

        threads = [threading.Thread(target=bump) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert state["count"] == 2


class TestLockOrderDeadlock:
    """R014's failure mode: opposite acquisition orders, forced to collide."""

    def test_opposite_orders_deadlock_under_try_acquire(self):
        lock_a, lock_b = threading.Lock(), threading.Lock()
        both_hold_first = threading.Barrier(2)
        both_tried = threading.Barrier(2)
        outcomes: dict[str, bool] = {}

        def forward():
            with lock_a:
                both_hold_first.wait(timeout=5)
                # The peer provably holds lock_b and won't release until
                # after both_tried — so this try MUST fail.
                outcomes["forward"] = lock_b.acquire(blocking=False)
                both_tried.wait(timeout=5)
                if outcomes["forward"]:
                    lock_b.release()

        def backward():
            with lock_b:
                both_hold_first.wait(timeout=5)
                outcomes["backward"] = lock_a.acquire(blocking=False)
                both_tried.wait(timeout=5)
                if outcomes["backward"]:
                    lock_a.release()

        threads = [
            threading.Thread(target=forward),
            threading.Thread(target=backward),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        # Each thread holds its first lock and waits on the other's:
        # without the timeout escape hatch this is a permanent deadlock.
        assert outcomes == {"forward": False, "backward": False}

    def test_consistent_order_cannot_deadlock(self):
        lock_a, lock_b = threading.Lock(), threading.Lock()
        started = threading.Barrier(2)
        outcomes: list[bool] = []

        def worker():
            started.wait(timeout=5)
            with lock_a:
                acquired = lock_b.acquire(timeout=5)
                outcomes.append(acquired)
                if acquired:
                    lock_b.release()

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert outcomes == [True, True]


class TestPickleBoundary:
    """R013's failure mode: the payload does not survive the crossing."""

    def test_locks_do_not_pickle(self):
        with pytest.raises(TypeError):
            pickle.dumps(threading.Lock())

    def test_lambdas_do_not_pickle(self):
        with pytest.raises(Exception):  # AttributeError or PicklingError
            pickle.dumps(lambda x: x + 1)

    def test_open_handles_do_not_pickle(self, tmp_path):
        target = tmp_path / "grid.log"
        with open(target, "w") as handle:
            with pytest.raises(TypeError):
                pickle.dumps(handle)

    def test_static_rule_flags_what_pickle_rejects(self, flow):
        # The same three payload families, as source: R013 reports each.
        findings = flow({
            "grid.py": """
                import multiprocessing as mp
                import threading

                def setup(log):
                    pass

                def job(args):
                    return args

                def run(jobs):
                    guard = threading.Lock()
                    handle = open("grid.log", "a")
                    with mp.Pool(2, initializer=setup,
                                 initargs=(handle,)) as pool:
                        pool.map(lambda j: j, jobs)
                        return pool.starmap(job, [(guard, j) for j in jobs])
                """,
        }, select=["R013"])
        assert rule_ids(findings) == ["R013", "R013", "R013"]


class TestForkCapturedDivergence:
    """R016's failure mode: per-copy mutation of import-time state.

    Simulated with two dict copies standing in for parent/child address
    spaces after fork — the mechanism (copied state mutated privately)
    is identical, without paying for real process spawns in tier-1.
    """

    def test_mutating_a_forked_copy_diverges_silently(self):
        parent_rng_state = {"draws": 0, "seed": 1234}
        child_state = dict(parent_rng_state)  # what fork gives the worker

        child_state["draws"] += 7  # worker "advances" its RNG
        child_state["seed"] = 99  # and reseeds — parent never sees it

        assert parent_rng_state == {"draws": 0, "seed": 1234}
        assert child_state != parent_rng_state  # silent divergence

    def test_reinstalling_in_the_child_is_the_fix(self):
        def make_state(seed):
            return {"draws": 0, "seed": seed}

        parent = make_state(1234)
        child = make_state(1234 + 1)  # worker initializer derives its own
        child["draws"] += 7
        assert parent == {"draws": 0, "seed": 1234}
        assert child["seed"] != parent["seed"]  # intentional, not silent
