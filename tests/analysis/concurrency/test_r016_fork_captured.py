"""R016: import-time singletons mutated from worker-reachable code."""

from __future__ import annotations

from tests.analysis.concurrency.conftest import rule_ids


class TestPositives:
    def test_module_level_rng_reseeded_in_worker(self, flow):
        findings = flow({
            "grid.py": """
                import multiprocessing as mp
                import numpy as np

                RNG = np.random.default_rng(0)

                def job(seed):
                    RNG.shuffle([1, 2, 3])
                    return seed

                def run(jobs):
                    with mp.Pool(2) as pool:
                        return pool.map(job, jobs)
                """,
        }, select=["R016"])
        assert rule_ids(findings) == ["R016"]
        assert "RNG" in findings[0].message

    def test_captured_clock_callable_swapped_in_worker(self, flow):
        findings = flow({
            "timing.py": """
                import time

                _clock = time.perf_counter

                def install(fn):
                    global _clock
                    _clock = fn
                """,
            "grid.py": """
                import multiprocessing as mp

                from timing import install

                def job(x):
                    install(lambda: 0.0)
                    return x

                def run(jobs):
                    with mp.Pool(2) as pool:
                        return pool.map(job, jobs)
                """,
        }, select=["R016"])
        assert "R016" in rule_ids(findings)
        assert any(f.path.endswith("timing.py") for f in findings)

    def test_singleton_registry_instance_mutated_in_worker(self, flow):
        findings = flow({
            "perfmod.py": """
                class SpanRegistry:
                    def __init__(self):
                        self.spans = []

                    def record(self, span):
                        self.spans.append(span)

                PERF = SpanRegistry()
                """,
            "grid.py": """
                import multiprocessing as mp

                from perfmod import PERF

                def job(x):
                    PERF.record(("job", x))
                    return x

                def run(jobs):
                    with mp.Pool(2) as pool:
                        return pool.map(job, jobs)
                """,
        }, select=["R016"])
        assert "R016" in rule_ids(findings)
        assert any(f.path.endswith("perfmod.py") for f in findings)


class TestNegatives:
    def test_rng_only_read_in_main_is_clean(self, flow):
        findings = flow({
            "grid.py": """
                import multiprocessing as mp
                import numpy as np

                RNG = np.random.default_rng(0)

                def job(seed):
                    return seed * 2

                def run(jobs):
                    RNG.shuffle(jobs)
                    with mp.Pool(2) as pool:
                        return pool.map(job, jobs)
                """,
        }, select=["R016"])
        assert findings == []

    def test_safe_annotated_definition_is_suppressed(self, flow):
        findings = flow({
            "grid.py": """
                import multiprocessing as mp
                import numpy as np

                RNG = np.random.default_rng(0)  # safe: R016 the pool initializer reseeds every worker from its job seed

                def job(seed):
                    RNG.shuffle([1, 2, 3])
                    return seed

                def run(jobs):
                    with mp.Pool(2) as pool:
                        return pool.map(job, jobs)
                """,
        }, select=["R013", "R014", "R015", "R016"])
        assert findings == []

    def test_plain_config_constant_is_clean(self, flow):
        # A module-level value whose name/type doesn't look like process
        # state is not a singleton, even if a worker touches it.
        findings = flow({
            "grid.py": """
                import multiprocessing as mp

                DEFAULTS = {"scale": "smoke"}

                def job(x):
                    return DEFAULTS.get("scale"), x

                def run(jobs):
                    with mp.Pool(2) as pool:
                        return pool.map(job, jobs)
                """,
        }, select=["R016"])
        assert findings == []
