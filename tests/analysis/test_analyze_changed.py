"""``pace-repro analyze --changed``: the git-diff-scoped static pass."""

from __future__ import annotations

import shutil
import subprocess

import pytest

from repro.cli import main

pytestmark = pytest.mark.skipif(
    shutil.which("git") is None, reason="git is not available"
)

CLEAN = '"""A well-behaved module."""\n\nVALUE = 1\n'
VIOLATION = (
    '"""A module drawing randomness outside repro.utils.rng."""\n\n'
    "import numpy as np\n\n\n"
    "def draw():\n"
    "    return np.random.rand(3)\n"
)


def _git(cwd, *args):
    subprocess.run(
        ["git", "-c", "user.email=dev@example.com", "-c", "user.name=dev", *args],
        cwd=cwd, check=True, capture_output=True,
    )


@pytest.fixture
def repo(tmp_path, monkeypatch):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "clean.py").write_text(CLEAN)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(tmp_path)
    return pkg


def test_no_changes_exits_zero(repo, capsys):
    assert main(["analyze", "--changed", str(repo)]) == 0
    assert "no modified python files" in capsys.readouterr().out


def test_clean_modified_subset_exits_zero(repo, capsys):
    (repo / "clean.py").write_text(CLEAN + "OTHER = 2\n")
    assert main(["analyze", "--changed", str(repo)]) == 0
    out = capsys.readouterr().out
    assert "1 modified file(s)" in out
    assert "clean: no findings" in out


def test_untracked_violation_is_caught(repo, capsys):
    (repo / "fresh.py").write_text(VIOLATION)
    assert main(["analyze", "--changed", str(repo)]) == 1
    out = capsys.readouterr().out
    assert "R001" in out
    assert "fresh.py" in out


def test_unchanged_violations_stay_out_of_scope(repo, capsys):
    # A pre-existing (committed) violation must not fail a scoped run
    # that only touched a clean file: --changed audits the diff, the full
    # pass audits the tree.
    (repo / "legacy.py").write_text(VIOLATION)
    _git(repo.parent, "add", ".")
    _git(repo.parent, "commit", "-q", "-m", "legacy")
    (repo / "clean.py").write_text(CLEAN + "OTHER = 2\n")
    assert main(["analyze", "--changed", str(repo)]) == 0
    capsys.readouterr()


def test_deleted_files_are_skipped(repo, capsys):
    (repo / "clean.py").unlink()
    assert main(["analyze", "--changed", str(repo)]) == 0
    assert "no modified python files" in capsys.readouterr().out


def test_outside_a_git_repo_exits_two(tmp_path, monkeypatch, capsys):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text(CLEAN)
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("GIT_DIR", str(tmp_path / "definitely-missing"))
    assert main(["analyze", "--changed", str(pkg)]) == 2
    assert "--changed requires a git work tree" in capsys.readouterr().err


def test_json_format_reports_the_changed_set(repo, capsys):
    import json

    (repo / "clean.py").write_text(CLEAN + "OTHER = 2\n")
    assert main(["analyze", "--changed", "--format", "json", str(repo)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert len(payload["changed"]) == 1 and payload["changed"][0].endswith("clean.py")
