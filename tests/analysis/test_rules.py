"""Each rule fires on its trigger fixture and stays quiet on the clean one."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import all_rules, lint_file, run_lint


def lint_snippet(tmp_path, source, filename="snippet.py", subdir=None, select=None):
    directory = tmp_path if subdir is None else tmp_path / subdir
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / filename
    path.write_text(textwrap.dedent(source))
    return lint_file(path, rules=all_rules(select=select))


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestR001UnseededRng:
    def test_flags_direct_default_rng(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import numpy as np

            def sample():
                rng = np.random.default_rng(42)
                return rng.random()
        """, select=["R001"])
        assert rule_ids(findings) == ["R001"]
        assert findings[0].line == 5

    def test_flags_legacy_global_state(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import numpy
            numpy.random.seed(0)
            x = numpy.random.rand(3)
        """, select=["R001"])
        assert rule_ids(findings) == ["R001", "R001"]

    def test_flags_from_import_alias(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from numpy.random import default_rng

            def sample():
                return default_rng(7)
        """, select=["R001"])
        assert rule_ids(findings) == ["R001"]

    def test_passes_derive_rng(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from repro.utils.rng import derive_rng

            def sample(seed):
                return derive_rng(seed).random()
        """, select=["R001"])
        assert findings == []

    def test_exempts_utils_rng_module(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import numpy as np

            def derive_rng(seed):
                return np.random.default_rng(seed)
        """, filename="rng.py", subdir="utils", select=["R001"])
        assert findings == []


class TestR002MutableDefaultArg:
    def test_flags_list_dict_set_literals(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def f(a=[], b={}, c=set()):
                return a, b, c
        """, select=["R002"])
        assert rule_ids(findings) == ["R002", "R002", "R002"]

    def test_flags_kwonly_and_lambda(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def f(*, registry=dict()):
                return registry

            g = lambda items=[]: items
        """, select=["R002"])
        assert rule_ids(findings) == ["R002", "R002"]

    def test_passes_none_default(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def f(a=None, b=(), c="x", d=0):
                a = [] if a is None else a
                return a, b, c, d
        """, select=["R002"])
        assert findings == []


class TestR003BareOrBroadExcept:
    def test_flags_bare_except_as_error(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            try:
                risky()
            except:
                pass
        """, select=["R003"])
        assert rule_ids(findings) == ["R003"]
        assert findings[0].severity == "error"

    def test_flags_broad_except_without_reraise(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            try:
                risky()
            except Exception:
                result = None
        """, select=["R003"])
        assert rule_ids(findings) == ["R003"]
        assert findings[0].severity == "warning"

    def test_passes_broad_except_with_reraise(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            try:
                risky()
            except Exception:
                cleanup()
                raise
        """, select=["R003"])
        assert findings == []

    def test_passes_narrow_except(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            try:
                risky()
            except ValueError:
                result = None
        """, select=["R003"])
        assert findings == []


class TestR004PrintInLibrary:
    def test_flags_print(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def report(x):
                print(x)
        """, select=["R004"])
        assert rule_ids(findings) == ["R004"]

    def test_exempts_cli_and_main(self, tmp_path):
        for filename in ("cli.py", "__main__.py"):
            findings = lint_snippet(
                tmp_path, "print('usage: ...')\n", filename=filename, select=["R004"]
            )
            assert findings == []

    def test_passes_logger(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from repro.utils.log import get_logger

            _log = get_logger(__name__)

            def report(x):
                _log.info("%s", x)
        """, select=["R004"])
        assert findings == []


class TestR005FloatEquality:
    def test_flags_cardinality_name(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def drop_empty(card):
                return card == 0
        """, select=["R005"])
        assert rule_ids(findings) == ["R005"]

    def test_flags_float_literal(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def is_disabled(p):
                return p == 0.0
        """, select=["R005"])
        assert rule_ids(findings) == ["R005"]

    def test_flags_qerror_attribute(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def same(summary, other):
                return summary.degradation != other.degradation
        """, select=["R005"])
        assert rule_ids(findings) == ["R005"]

    def test_passes_inequality_and_isclose(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import math

            def drop_empty(card, p):
                return card <= 0 or math.isclose(p, 0.0)
        """, select=["R005"])
        assert findings == []

    def test_passes_plain_int_comparison(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def check(count, name):
                return count == 3 and name == "dmv"
        """, select=["R005"])
        assert findings == []


class TestR006MissingSeedPlumbing:
    def test_flags_hardcoded_seed_in_attack_package(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from repro.utils.rng import derive_rng

            def craft_poison(database, count):
                rng = derive_rng(0)
                return rng.random(count)
        """, subdir="attack", select=["R006"])
        assert rule_ids(findings) == ["R006"]

    def test_flags_os_seeded_default_rng(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import numpy as np

            def sample_queries(workload):
                rng = np.random.default_rng()
                return rng.choice(workload)
        """, subdir="workload", select=["R006"])
        assert rule_ids(findings) == ["R006"]

    def test_passes_seed_parameter(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from repro.utils.rng import derive_rng

            def craft_poison(database, count, seed=None):
                rng = derive_rng(seed)
                return rng.random(count)
        """, subdir="attack", select=["R006"])
        assert findings == []

    def test_passes_config_seed_expression(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from repro.utils.rng import derive_rng

            def train(config):
                rng = derive_rng(config.seed + 1)
                return rng.random()
        """, subdir="ce", select=["R006"])
        assert findings == []

    def test_ignores_private_functions_and_other_packages(self, tmp_path):
        source = """
            from repro.utils.rng import derive_rng

            def _helper():
                return derive_rng(3)
        """
        assert lint_snippet(tmp_path, source, subdir="attack", select=["R006"]) == []
        public = """
            from repro.utils.rng import derive_rng

            def helper():
                return derive_rng(3)
        """
        assert lint_snippet(tmp_path, public, subdir="metrics", select=["R006"]) == []


class TestFramework:
    def test_noqa_suppresses_specific_rule(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import numpy as np

            rng = np.random.default_rng(1)  # noqa: R001
        """)
        assert findings == []

    def test_noqa_other_rule_does_not_suppress(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import numpy as np

            rng = np.random.default_rng(1)  # noqa: R004
        """, select=["R001"])
        assert rule_ids(findings) == ["R001"]

    def test_noqa_multiple_codes_suppresses_each(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import numpy as np

            print(np.random.default_rng(1).random())  # noqa: R001, R004
        """)
        assert findings == []

    def test_noqa_on_continuation_line_suppresses(self, tmp_path):
        # The finding anchors to the statement's first line; the comment
        # sits on the closing paren two lines down. Any line of the
        # statement's span may carry the noqa.
        findings = lint_snippet(tmp_path, """
            import numpy as np

            rng = np.random.default_rng(
                42
            )  # noqa: R001
        """, select=["R001"])
        assert findings == []

    def test_noqa_on_continuation_line_is_rule_specific(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import numpy as np

            rng = np.random.default_rng(
                42
            )  # noqa: R004
        """, select=["R001"])
        assert rule_ids(findings) == ["R001"]

    def test_bare_noqa_suppresses_everything_on_the_statement(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import numpy as np

            print(np.random.default_rng(1).random())  # noqa
        """)
        assert findings == []

    def test_syntax_error_becomes_finding(self, tmp_path):
        findings = lint_snippet(tmp_path, "def broken(:\n")
        assert rule_ids(findings) == ["E999"]

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(KeyError):
            all_rules(select=["R999"])

    def test_run_lint_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("print('x')\n")
        (tmp_path / "pkg" / "b.py").write_text("import math\n")
        findings = run_lint([tmp_path / "pkg"], select=["R004"])
        assert rule_ids(findings) == ["R004"]

    def test_findings_report_location_and_hint(self, tmp_path):
        findings = lint_snippet(tmp_path, "print('x')\n", select=["R004"])
        (finding,) = findings
        assert finding.location.endswith("snippet.py:1:1")
        assert "get_logger" in finding.hint
