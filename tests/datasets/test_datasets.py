"""Synthetic dataset builders: schema shapes, determinism, integrity."""

import numpy as np
import pytest

from repro.datasets import (
    ColumnSpec,
    ForeignKeySpec,
    TableSpec,
    build_database,
    load_dataset,
)
from repro.datasets.registry import DATASET_NAMES, MULTI_TABLE_DATASETS
from repro.db import Executor, Query
from repro.utils.errors import ReproError, SchemaError


class TestBuilder:
    def test_foreign_keys_reference_valid_parents(self):
        specs = [
            TableSpec("parent", 1.0, (ColumnSpec("x", "uniform", 0, 10),)),
            TableSpec(
                "child",
                2.0,
                (ColumnSpec("y", "zipf", 0, 5),),
                foreign_keys=(ForeignKeySpec("parent_id", "parent", skew=1.0),),
            ),
        ]
        db = build_database("t", specs, base_rows=50, seed=1)
        parent_ids = set(db.table("parent").column("id").tolist())
        child_refs = set(db.table("child").column("parent_id").tolist())
        assert child_refs <= parent_ids

    def test_deterministic_given_seed(self):
        specs = [TableSpec("t", 1.0, (ColumnSpec("a", "lognormal", 0, 100),))]
        a = build_database("x", specs, 100, seed=5).table("t").column("a")
        b = build_database("x", specs, 100, seed=5).table("t").column("a")
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        specs = [TableSpec("t", 1.0, (ColumnSpec("a", "uniform", 0, 100),))]
        a = build_database("x", specs, 100, seed=1).table("t").column("a")
        b = build_database("x", specs, 100, seed=2).table("t").column("a")
        assert not np.array_equal(a, b)

    def test_values_respect_domain(self):
        specs = [
            TableSpec(
                "t",
                1.0,
                (
                    ColumnSpec("a", "zipf", 5, 20),
                    ColumnSpec("b", "normal", -10, 10),
                    ColumnSpec("c", "correlated", 0, 1, source="a"),
                ),
            )
        ]
        db = build_database("x", specs, 200, seed=0)
        for name, (lo, hi) in [("a", (5, 20)), ("b", (-10, 10)), ("c", (0, 1))]:
            values = db.table("t").column(name)
            assert values.min() >= lo and values.max() <= hi

    def test_correlated_needs_earlier_source(self):
        specs = [TableSpec("t", 1.0, (ColumnSpec("c", "correlated", 0, 1, source="nope"),))]
        with pytest.raises(SchemaError):
            build_database("x", specs, 10)

    def test_correlated_is_correlated(self):
        specs = [
            TableSpec(
                "t",
                1.0,
                (
                    ColumnSpec("base", "uniform", 0, 100, integer=False),
                    ColumnSpec("dep", "correlated", 0, 100, source="base", noise=0.05),
                ),
            )
        ]
        db = build_database("x", specs, 500, seed=0)
        base = db.table("t").column("base")
        dep = db.table("t").column("dep")
        assert np.corrcoef(base, dep)[0, 1] > 0.8

    def test_zipf_is_skewed(self):
        specs = [TableSpec("t", 1.0, (ColumnSpec("a", "zipf", 0, 50, zipf_a=1.5),))]
        values = build_database("x", specs, 2000, seed=0).table("t").column("a")
        # head value dominates
        head_share = np.mean(values == values.min())
        assert head_share > 0.3

    def test_cyclic_fk_rejected(self):
        specs = [
            TableSpec("a", 1.0, (), foreign_keys=(ForeignKeySpec("b_id", "b"),)),
            TableSpec("b", 1.0, (), foreign_keys=(ForeignKeySpec("a_id", "a"),)),
        ]
        with pytest.raises(SchemaError):
            build_database("x", specs, 10)

    def test_declared_table_order_preserved(self):
        specs = [
            TableSpec(
                "child", 1.0, (), foreign_keys=(ForeignKeySpec("p_id", "parent"),)
            ),
            TableSpec("parent", 1.0, (ColumnSpec("x", "uniform", 0, 1),)),
        ]
        db = build_database("x", specs, 20)
        assert db.schema.table_names == ("child", "parent")


class TestRegistry:
    def test_all_paper_datasets_build(self):
        for name in DATASET_NAMES:
            db = load_dataset(name, scale="smoke", seed=0)
            assert db.total_rows() > 0

    def test_schema_shapes_match_paper(self):
        assert len(load_dataset("dmv", scale="smoke").schema.tables) == 1
        assert len(load_dataset("imdb", scale="smoke").schema.tables) == 21
        assert len(load_dataset("tpch", scale="smoke").schema.tables) == 8
        assert len(load_dataset("stats", scale="smoke").schema.tables) == 8

    def test_multi_table_join_graphs_connected(self):
        for name in MULTI_TABLE_DATASETS:
            db = load_dataset(name, scale="smoke")
            assert db.schema.is_valid_join_set(db.schema.table_names)

    def test_unknown_dataset_raises(self):
        with pytest.raises(ReproError):
            load_dataset("northwind")

    def test_cache_returns_same_object(self):
        a = load_dataset("dmv", scale="smoke", seed=0)
        b = load_dataset("dmv", scale="smoke", seed=0)
        assert a is b

    def test_base_rows_override(self):
        db = load_dataset("dmv", base_rows=123, seed=7)
        assert db.table("dmv").num_rows == 123

    def test_joins_are_executable(self):
        db = load_dataset("stats", scale="smoke")
        ex = Executor(db)
        q = Query.build(db.schema, ["users", "posts", "comments"])
        assert ex.count(q) > 0
