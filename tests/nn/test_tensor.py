"""Gradient checks and graph semantics for the autodiff engine."""

import numpy as np
import pytest

from repro.nn import Tensor, concat, grad, maximum, minimum, no_grad, stack, where


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn at x."""
    g = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = g.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        hi = fn(x)
        flat[i] = original - eps
        lo = fn(x)
        flat[i] = original
        gflat[i] = (hi - lo) / (2 * eps)
    return g


def check_unary(op, data, tol=1e-5):
    x = Tensor(data.copy(), requires_grad=True)
    out = op(x)
    loss = (out * out).sum()
    loss.backward()
    analytic = x.grad.data

    def scalar_fn(arr):
        val = op(Tensor(arr)).data
        return float((val * val).sum())

    expected = numeric_grad(scalar_fn, data.copy())
    np.testing.assert_allclose(analytic, expected, rtol=tol, atol=tol)


class TestElementwiseGrads:
    rng = np.random.default_rng(0)

    @pytest.mark.parametrize(
        "op",
        [
            lambda t: t.exp(),
            lambda t: t.tanh(),
            lambda t: t.sigmoid(),
            lambda t: t.relu(),
            lambda t: t * 3.0 + 1.0,
            lambda t: t**3,
            lambda t: -t,
            lambda t: t.abs(),
        ],
    )
    def test_unary_ops(self, op):
        data = self.rng.normal(size=(4, 3)) + 0.1
        check_unary(op, data)

    def test_log_positive_domain(self):
        data = self.rng.uniform(0.5, 2.0, size=(5,))
        check_unary(lambda t: t.log(), data)

    def test_sqrt(self):
        data = self.rng.uniform(0.5, 2.0, size=(5,))
        check_unary(lambda t: t.sqrt(), data)

    def test_clip_gradient_masks_outside(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        y = x.clip(0.0, 1.0).sum()
        y.backward()
        np.testing.assert_array_equal(x.grad.data, [0.0, 1.0, 0.0])


class TestBinaryGrads:
    rng = np.random.default_rng(1)

    def test_mul_grads_both_sides(self):
        a = Tensor(self.rng.normal(size=(3, 2)), requires_grad=True)
        b = Tensor(self.rng.normal(size=(3, 2)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad.data, b.data)
        np.testing.assert_allclose(b.grad.data, a.data)

    def test_div(self):
        a_data = self.rng.uniform(1.0, 2.0, size=(4,))
        b_data = self.rng.uniform(1.0, 2.0, size=(4,))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad.data, 1.0 / b_data)
        np.testing.assert_allclose(b.grad.data, -a_data / b_data**2)

    def test_matmul(self):
        a = Tensor(self.rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(self.rng.normal(size=(4, 2)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad.data, np.ones((3, 2)) @ b.data.T)
        np.testing.assert_allclose(b.grad.data, a.data.T @ np.ones((3, 2)))

    def test_broadcast_add_bias(self):
        x = Tensor(self.rng.normal(size=(5, 3)), requires_grad=True)
        b = Tensor(self.rng.normal(size=(3,)), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad.data, np.full(3, 5.0))
        np.testing.assert_allclose(x.grad.data, np.ones((5, 3)))

    def test_maximum_routes_gradient(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        maximum(a, b).sum().backward()
        np.testing.assert_array_equal(a.grad.data, [0.0, 1.0])
        np.testing.assert_array_equal(b.grad.data, [1.0, 0.0])

    def test_minimum_routes_gradient(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        minimum(a, b).sum().backward()
        np.testing.assert_array_equal(a.grad.data, [1.0, 0.0])
        np.testing.assert_array_equal(b.grad.data, [0.0, 1.0])

    def test_where_blends(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        out = where(np.array([True, False]), a, b)
        np.testing.assert_array_equal(out.data, [1.0, 4.0])
        out.sum().backward()
        np.testing.assert_array_equal(a.grad.data, [1.0, 0.0])
        np.testing.assert_array_equal(b.grad.data, [0.0, 1.0])


class TestShapeOps:
    rng = np.random.default_rng(2)

    def test_reshape_roundtrip(self):
        x = Tensor(self.rng.normal(size=(2, 6)), requires_grad=True)
        y = x.reshape((3, 4)).sum()
        y.backward()
        np.testing.assert_allclose(x.grad.data, np.ones((2, 6)))

    def test_transpose(self):
        x = Tensor(self.rng.normal(size=(2, 3)), requires_grad=True)
        (x.T * Tensor(np.arange(6).reshape(3, 2))).sum().backward()
        np.testing.assert_allclose(x.grad.data, np.arange(6).reshape(3, 2).T)

    def test_getitem_slice(self):
        x = Tensor(self.rng.normal(size=(4, 5)), requires_grad=True)
        x[1:3, 2:4].sum().backward()
        expected = np.zeros((4, 5))
        expected[1:3, 2:4] = 1.0
        np.testing.assert_array_equal(x.grad.data, expected)

    def test_concat_splits_gradient(self):
        a = Tensor(self.rng.normal(size=(2, 2)), requires_grad=True)
        b = Tensor(self.rng.normal(size=(2, 3)), requires_grad=True)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * out).sum().backward()
        np.testing.assert_allclose(a.grad.data, 2 * a.data)
        np.testing.assert_allclose(b.grad.data, 2 * b.data)

    def test_stack(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_array_equal(a.grad.data, np.ones(3))

    def test_sum_axis_keepdims(self):
        x = Tensor(self.rng.normal(size=(3, 4)), requires_grad=True)
        x.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(x.grad.data, np.ones((3, 4)))

    def test_mean_axis(self):
        x = Tensor(self.rng.normal(size=(2, 4)), requires_grad=True)
        x.mean(axis=0).sum().backward()
        np.testing.assert_allclose(x.grad.data, np.full((2, 4), 0.5))

    def test_max_reduce(self):
        x = Tensor(np.array([1.0, 9.0, 3.0]), requires_grad=True)
        m = x.max_reduce()
        assert m.item() == 9.0
        m.backward()
        np.testing.assert_array_equal(x.grad.data, [0.0, 1.0, 0.0])


class TestGraphSemantics:
    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (x * x).sum().backward()
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad.data, [8.0])

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * 2.0
        z = (y + y).sum()  # z = 4x
        z.backward()
        np.testing.assert_allclose(x.grad.data, [4.0])

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_detach_cuts_graph(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = (x * 2.0).detach() * x
        y.sum().backward()
        np.testing.assert_allclose(x.grad.data, [2.0])

    def test_backward_non_scalar_requires_seed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_constant_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.sum().backward()

    def test_functional_grad_does_not_touch_grad_attr(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (g,) = grad((x * x).sum(), [x])
        np.testing.assert_allclose(g.data, [4.0])
        assert x.grad is None

    def test_functional_grad_non_leaf_input(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0
        loss = (y * y).sum()
        (gy,) = grad(loss, [y])
        np.testing.assert_allclose(gy.data, [12.0])


class TestSecondOrder:
    def test_second_derivative_of_cube(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x**3
        (g1,) = grad(y.sum(), [x], create_graph=True)
        np.testing.assert_allclose(g1.data, [12.0])  # 3x^2
        (g2,) = grad(g1.sum(), [x])
        np.testing.assert_allclose(g2.data, [12.0])  # 6x

    def test_second_derivative_sigmoid(self):
        x = Tensor(np.array([0.3]), requires_grad=True)
        y = x.sigmoid().sum()
        (g1,) = grad(y, [x], create_graph=True)
        (g2,) = grad(g1.sum(), [x])
        s = 1.0 / (1.0 + np.exp(-0.3))
        np.testing.assert_allclose(g1.data, [s * (1 - s)], rtol=1e-10)
        np.testing.assert_allclose(g2.data, [s * (1 - s) * (1 - 2 * s)], rtol=1e-10)

    def test_grad_through_inner_update(self):
        """d/dq of L(theta - lr * dLtrain/dtheta) — PACE's core computation."""
        lr = 0.1
        theta = Tensor(np.array([1.0]), requires_grad=True)
        q = Tensor(np.array([2.0]), requires_grad=True)
        inner = (theta * q) ** 2  # dL/dtheta = 2 q^2 theta
        (g_theta,) = grad(inner.sum(), [theta], create_graph=True)
        theta_new = theta - lr * g_theta  # theta (1 - 2 lr q^2)
        outer = (theta_new**2).sum()
        (g_q,) = grad(outer, [q])
        # outer = theta^2 (1 - 2 lr q^2)^2; d/dq = theta^2 * 2(1-2lr q^2)(-4 lr q)
        expected = 1.0 * 2 * (1 - 2 * lr * 4.0) * (-4 * lr * 2.0)
        np.testing.assert_allclose(g_q.data, [expected], rtol=1e-10)

    def test_mixed_partial_matches_numeric(self):
        rng = np.random.default_rng(7)
        theta0 = rng.normal(size=3)
        q0 = rng.normal(size=3)
        lr = 0.05

        def outer_value(q_arr):
            theta = Tensor(theta0.copy(), requires_grad=True)
            q = Tensor(q_arr, requires_grad=True)
            inner = ((theta * q).tanh() ** 2).sum()
            (g_theta,) = grad(inner, [theta], create_graph=True)
            theta_new = theta - lr * g_theta
            return ((theta_new**2).sum(), q)

        loss, q = outer_value(q0.copy())
        (analytic,) = grad(loss, [q])

        def scalar(q_arr):
            value, _ = outer_value(q_arr)
            return value.item()

        numeric = numeric_grad(scalar, q0.copy())
        np.testing.assert_allclose(analytic.data, numeric, rtol=1e-4, atol=1e-6)
