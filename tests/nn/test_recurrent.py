"""Recurrent cells and sequence plumbing."""

import numpy as np

from repro.nn import LSTM, RNN, LSTMCell, RNNCell, Tensor, split_sequence


class TestCells:
    def test_rnn_cell_shapes(self):
        cell = RNNCell(4, 6, rng=0)
        h = cell(Tensor(np.zeros((3, 4))), Tensor(np.zeros((3, 6))))
        assert h.shape == (3, 6)

    def test_rnn_cell_output_bounded(self):
        cell = RNNCell(4, 6, rng=0)
        h = cell(Tensor(np.random.default_rng(0).normal(size=(3, 4)) * 10),
                 Tensor(np.zeros((3, 6))))
        assert np.all(np.abs(h.data) <= 1.0)

    def test_lstm_cell_shapes(self):
        cell = LSTMCell(4, 6, rng=0)
        h, c = cell(Tensor(np.zeros((2, 4))), Tensor(np.zeros((2, 6))),
                    Tensor(np.zeros((2, 6))))
        assert h.shape == (2, 6)
        assert c.shape == (2, 6)

    def test_lstm_forget_gate_preserves_state_scale(self):
        cell = LSTMCell(2, 3, rng=0)
        c0 = Tensor(np.ones((1, 3)) * 5.0)
        _, c1 = cell(Tensor(np.zeros((1, 2))), Tensor(np.zeros((1, 3))), c0)
        # f in (0,1): new cell state magnitude bounded by old + 1
        assert np.all(np.abs(c1.data) <= 6.0)


class TestWrappers:
    def test_rnn_returns_final_hidden(self):
        net = RNN(4, 5, rng=0)
        out = net(Tensor(np.random.default_rng(0).normal(size=(2, 7, 4))))
        assert out.shape == (2, 5)

    def test_lstm_returns_final_hidden(self):
        net = LSTM(4, 5, rng=0)
        out = net(Tensor(np.random.default_rng(0).normal(size=(2, 7, 4))))
        assert out.shape == (2, 5)

    def test_gradient_flows_through_time(self):
        net = RNN(2, 3, rng=0)
        x = Tensor(np.random.default_rng(1).normal(size=(1, 5, 2)), requires_grad=True)
        net(x).sum().backward()
        # every time step received gradient
        assert np.all(np.abs(x.grad.data).sum(axis=2) > 0)

    def test_order_sensitivity(self):
        net = LSTM(1, 4, rng=0)
        seq = np.arange(6, dtype=float).reshape(1, 6, 1)
        fwd = net(Tensor(seq)).data
        rev = net(Tensor(seq[:, ::-1, :].copy())).data
        assert not np.allclose(fwd, rev)


class TestSplitSequence:
    def test_exact_multiple(self):
        x = Tensor(np.arange(12, dtype=float).reshape(2, 6))
        out = split_sequence(x, 3)
        assert out.shape == (2, 2, 3)
        np.testing.assert_array_equal(out.data[0, 0], [0, 1, 2])

    def test_pads_remainder_with_zeros(self):
        x = Tensor(np.ones((1, 5)))
        out = split_sequence(x, 4)
        assert out.shape == (1, 2, 4)
        np.testing.assert_array_equal(out.data[0, 1], [1, 0, 0, 0])

    def test_gradient_through_padding(self):
        x = Tensor(np.ones((1, 5)), requires_grad=True)
        split_sequence(x, 4).sum().backward()
        np.testing.assert_array_equal(x.grad.data, np.ones((1, 5)))
