"""Loss functions, including the Q-error loss central to the paper."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    bce_loss,
    kl_standard_normal,
    log_q_error_loss,
    mse_loss,
    q_error,
    q_error_loss,
)


class TestQError:
    def test_symmetric(self):
        est = Tensor(np.array([10.0, 1.0]))
        true = Tensor(np.array([1.0, 10.0]))
        np.testing.assert_allclose(q_error(est, true).data, [10.0, 10.0])

    def test_perfect_estimate_is_one(self):
        x = Tensor(np.array([5.0, 7.0]))
        np.testing.assert_allclose(q_error(x, x).data, [1.0, 1.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            q_error(Tensor(np.array([0.0])), Tensor(np.array([1.0])))
        with pytest.raises(ValueError):
            q_error(Tensor(np.array([1.0])), Tensor(np.array([-2.0])))

    def test_loss_is_mean(self):
        est = Tensor(np.array([2.0, 8.0]))
        true = Tensor(np.array([1.0, 2.0]))
        assert q_error_loss(est, true).item() == pytest.approx(3.0)

    def test_gradient_direction_overestimate(self):
        est = Tensor(np.array([4.0]), requires_grad=True)
        loss = q_error_loss(est, Tensor(np.array([2.0])))
        loss.backward()
        assert est.grad.data[0] > 0  # decreasing the estimate lowers loss

    def test_log_variant_equals_log_of_q_error(self):
        est = Tensor(np.array([4.0, 0.5]))
        true = Tensor(np.array([2.0, 2.0]))
        expected = np.log(q_error(est, true).data).mean()
        assert log_q_error_loss(est, true).item() == pytest.approx(expected)


class TestMSE:
    def test_value(self):
        a = Tensor(np.array([1.0, 2.0]))
        b = Tensor(np.array([3.0, 2.0]))
        assert mse_loss(a, b).item() == pytest.approx(2.0)

    def test_gradient(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        mse_loss(a, Tensor(np.array([0.0, 0.0]))).backward()
        np.testing.assert_allclose(a.grad.data, [1.0, 2.0])


class TestBCE:
    def test_confident_correct_is_small(self):
        p = Tensor(np.array([0.999, 0.001]))
        t = Tensor(np.array([1.0, 0.0]))
        assert bce_loss(p, t).item() < 0.01

    def test_confident_wrong_is_large(self):
        p = Tensor(np.array([0.001]))
        t = Tensor(np.array([1.0]))
        assert bce_loss(p, t).item() > 4.0

    def test_clipping_handles_boundary_probs(self):
        p = Tensor(np.array([1.0, 0.0]))
        t = Tensor(np.array([1.0, 0.0]))
        assert np.isfinite(bce_loss(p, t).item())

    def test_accepts_numpy_target(self):
        p = Tensor(np.array([0.5]))
        assert np.isfinite(bce_loss(p, np.array([1.0])).item())


class TestKL:
    def test_standard_normal_posterior_is_zero(self):
        mu = Tensor(np.zeros((4, 3)))
        log_var = Tensor(np.zeros((4, 3)))
        assert kl_standard_normal(mu, log_var).item() == pytest.approx(0.0)

    def test_positive_for_shifted_posterior(self):
        mu = Tensor(np.full((2, 3), 2.0))
        log_var = Tensor(np.zeros((2, 3)))
        assert kl_standard_normal(mu, log_var).item() > 0
