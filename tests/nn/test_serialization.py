"""Saving and loading module parameters."""

import numpy as np
import pytest

from repro.nn import Linear, Tensor, load_module, save_module, mlp


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        net = mlp(3, [4], 1, rng=0)
        path = tmp_path / "model.npz"
        save_module(net, path)
        other = mlp(3, [4], 1, rng=99)
        load_module(other, path)
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_array_equal(net(x).data, other(x).data)

    def test_suffix_added_when_missing(self, tmp_path):
        net = Linear(2, 2, rng=0)
        base = tmp_path / "weights"
        save_module(net, base)
        loaded = Linear(2, 2, rng=5)
        load_module(loaded, base)  # finds weights.npz
        np.testing.assert_array_equal(net.weight.data, loaded.weight.data)

    def test_architecture_mismatch_raises(self, tmp_path):
        net = Linear(2, 2, rng=0)
        path = tmp_path / "model.npz"
        save_module(net, path)
        with pytest.raises((KeyError, ValueError)):
            load_module(Linear(3, 2, rng=0), path)
