"""Saving and loading module parameters (versioned REPRO-CKPT container)."""

import io
import zipfile

import numpy as np
import pytest

from repro.nn import (
    Linear,
    Tensor,
    load_module,
    mlp,
    save_module,
    state_from_bytes,
    state_to_bytes,
    validate_state_for,
)
from repro.nn.serialization import FORMAT_VERSION, MAGIC
from repro.utils.errors import SerializationError


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        net = mlp(3, [4], 1, rng=0)
        path = tmp_path / "model.npz"
        save_module(net, path)
        other = mlp(3, [4], 1, rng=99)
        load_module(other, path)
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_array_equal(net(x).data, other(x).data)

    def test_suffix_added_when_missing(self, tmp_path):
        net = Linear(2, 2, rng=0)
        base = tmp_path / "weights"
        save_module(net, base)
        loaded = Linear(2, 2, rng=5)
        load_module(loaded, base)  # finds weights.npz
        np.testing.assert_array_equal(net.weight.data, loaded.weight.data)

    def test_architecture_mismatch_raises(self, tmp_path):
        net = Linear(2, 2, rng=0)
        path = tmp_path / "model.npz"
        save_module(net, path)
        with pytest.raises(SerializationError, match="shape mismatch"):
            load_module(Linear(3, 2, rng=0), path)


class TestContainer:
    def test_bytes_roundtrip_bitwise(self):
        state = {
            "w": np.arange(6, dtype=np.float64).reshape(2, 3),
            "b": np.array([1.5, -2.0], dtype=np.float32),
            "mask": np.array([True, False]),
            "cap": np.float64(17.25),
        }
        back = state_from_bytes(state_to_bytes(state))
        assert sorted(back) == sorted(state)
        for name, value in state.items():
            expected = np.asarray(value)
            assert back[name].dtype == expected.dtype
            assert back[name].shape == expected.shape
            np.testing.assert_array_equal(back[name], expected)

    def test_scalar_entries_keep_zero_dim_shape(self):
        back = state_from_bytes(state_to_bytes({"cap": np.float64(3.5)}))
        assert back["cap"].shape == ()
        assert float(back["cap"]) == pytest.approx(3.5)

    def test_serialization_is_deterministic(self):
        state = {"b": np.ones(3), "a": np.zeros((2, 2))}
        assert state_to_bytes(state) == state_to_bytes(dict(reversed(state.items())))

    def test_bad_magic_raises(self):
        with pytest.raises(SerializationError, match="bad magic"):
            state_from_bytes(b"definitely-not-a-checkpoint")

    def test_newer_version_raises(self):
        data = bytearray(state_to_bytes({"a": np.ones(2)}))
        offset = len(MAGIC)
        data[offset:offset + 4] = (FORMAT_VERSION + 1).to_bytes(4, "little")
        with pytest.raises(SerializationError, match="newer than this reader"):
            state_from_bytes(bytes(data))

    def test_truncated_payload_raises(self):
        data = state_to_bytes({"a": np.ones(8)})
        with pytest.raises(SerializationError, match="truncated"):
            state_from_bytes(data[:-4])

    def test_trailing_bytes_raise(self):
        data = state_to_bytes({"a": np.ones(2)})
        with pytest.raises(SerializationError, match="trailing bytes"):
            state_from_bytes(data + b"junk")

    def test_object_dtype_rejected(self):
        with pytest.raises(SerializationError, match="non-numeric"):
            state_to_bytes({"a": np.array(["strings"], dtype=object)})

    def test_legacy_npz_archive_still_loads(self):
        buffer = io.BytesIO()
        np.savez(buffer, weight=np.arange(4.0), bias=np.ones(2))
        data = buffer.getvalue()
        assert zipfile.is_zipfile(io.BytesIO(data))
        back = state_from_bytes(data)
        np.testing.assert_array_equal(back["weight"], np.arange(4.0))
        np.testing.assert_array_equal(back["bias"], np.ones(2))


class TestValidation:
    def test_missing_and_unexpected_keys_reported_together(self):
        net = Linear(2, 2, rng=0)
        state = {"weight": net.weight.data, "extra": np.ones(1)}
        with pytest.raises(SerializationError) as exc_info:
            validate_state_for(net, state)
        message = str(exc_info.value)
        assert "missing keys" in message and "'bias'" in message
        assert "unexpected keys" in message and "'extra'" in message

    def test_all_shape_mismatches_reported(self):
        net = mlp(3, [4], 1, rng=0)
        other = mlp(4, [5], 1, rng=0)
        with pytest.raises(SerializationError) as exc_info:
            validate_state_for(net, other.state_dict())
        assert str(exc_info.value).count("shape mismatch") >= 2

    def test_matching_state_passes(self):
        net = Linear(3, 2, rng=0)
        validate_state_for(net, Linear(3, 2, rng=9).state_dict())

    def test_corrupt_file_names_path(self, tmp_path):
        path = tmp_path / "model.npz"
        path.write_bytes(b"garbage-bytes")
        with pytest.raises(SerializationError, match="model.npz"):
            load_module(Linear(2, 2, rng=0), path)
