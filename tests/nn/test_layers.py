"""Layer behaviours not covered by the module/registration tests."""

import numpy as np
import pytest

from repro.nn import Dropout, Linear, ReLU, Sequential, Sigmoid, Tanh, Tensor


class TestActivationsAsModules:
    def test_relu_module(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_array_equal(out.data, [0.0, 2.0])

    def test_sigmoid_module_range(self):
        out = Sigmoid()(Tensor(np.array([-15.0, 0.0, 15.0])))
        assert np.all((out.data > 0) & (out.data < 1))

    def test_tanh_module(self):
        out = Tanh()(Tensor(np.array([0.0])))
        assert out.data[0] == 0.0


class TestLinear:
    def test_no_bias_variant(self):
        layer = Linear(3, 2, rng=0, bias=False)
        assert not layer.use_bias
        out = layer(Tensor(np.zeros((4, 3))))
        np.testing.assert_array_equal(out.data, np.zeros((4, 2)))

    def test_xavier_init_scale(self):
        layer = Linear(100, 100, rng=0)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= limit + 1e-12
        assert layer.weight.data.std() > limit / 4


class TestSequential:
    def test_empty_sequential_is_identity(self):
        seq = Sequential()
        x = Tensor(np.ones(3))
        assert seq(x) is x

    def test_iteration_order(self):
        l1, l2 = Linear(2, 2, rng=0), Linear(2, 2, rng=1)
        seq = Sequential(l1, ReLU(), l2)
        layers = list(seq)
        assert layers[0] is l1 and layers[2] is l2
        assert len(seq) == 3


class TestDropout:
    def test_eval_mode_is_identity(self):
        drop = Dropout(0.9, rng=0)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_array_equal(drop(x).data, np.ones((4, 4)))

    def test_train_mode_zeroes_and_rescales(self):
        drop = Dropout(0.5, rng=0)
        x = Tensor(np.ones((200, 10)))
        out = drop(x).data
        zero_fraction = (out == 0).mean()
        assert 0.3 < zero_fraction < 0.7
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted scaling

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_p_zero_is_identity_even_training(self):
        drop = Dropout(0.0, rng=0)
        x = Tensor(np.ones((3, 3)))
        assert drop(x) is x
