"""Layer behaviours not covered by the module/registration tests."""

import numpy as np
import pytest

from repro.nn import Dropout, Linear, ReLU, Sequential, Sigmoid, Tanh, Tensor


class TestActivationsAsModules:
    def test_relu_module(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_array_equal(out.data, [0.0, 2.0])

    def test_sigmoid_module_range(self):
        out = Sigmoid()(Tensor(np.array([-15.0, 0.0, 15.0])))
        assert np.all((out.data > 0) & (out.data < 1))

    def test_tanh_module(self):
        out = Tanh()(Tensor(np.array([0.0])))
        assert out.data[0] == 0.0


class TestLinear:
    def test_no_bias_variant(self):
        layer = Linear(3, 2, rng=0, bias=False)
        assert not layer.use_bias
        out = layer(Tensor(np.zeros((4, 3))))
        np.testing.assert_array_equal(out.data, np.zeros((4, 2)))

    def test_xavier_init_scale(self):
        layer = Linear(100, 100, rng=0)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= limit + 1e-12
        assert layer.weight.data.std() > limit / 4

    def test_kaiming_init_scale(self):
        layer = Linear(100, 100, rng=0, init_scheme="kaiming")
        limit = np.sqrt(6.0 / 100)
        xavier_limit = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= limit + 1e-12
        assert np.abs(layer.weight.data).max() > xavier_limit  # wider than xavier

    def test_unknown_init_scheme_rejected(self):
        with pytest.raises(ValueError, match="init_scheme"):
            Linear(4, 4, rng=0, init_scheme="glorot")


class TestSequential:
    def test_empty_sequential_is_identity(self):
        seq = Sequential()
        x = Tensor(np.ones(3))
        assert seq(x) is x

    def test_iteration_order(self):
        l1, l2 = Linear(2, 2, rng=0), Linear(2, 2, rng=1)
        seq = Sequential(l1, ReLU(), l2)
        layers = list(seq)
        assert layers[0] is l1 and layers[2] is l2
        assert len(seq) == 3


class TestDropout:
    def test_eval_mode_is_identity(self):
        drop = Dropout(0.9, rng=0)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_array_equal(drop(x).data, np.ones((4, 4)))

    def test_train_mode_zeroes_and_rescales(self):
        drop = Dropout(0.5, rng=0)
        x = Tensor(np.ones((200, 10)))
        out = drop(x).data
        zero_fraction = (out == 0).mean()
        assert 0.3 < zero_fraction < 0.7
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted scaling

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_p_zero_is_identity_even_training(self):
        drop = Dropout(0.0, rng=0)
        x = Tensor(np.ones((3, 3)))
        assert drop(x) is x


class TestFusedAffine:
    """Runtime Linear+activation fusion must be invisible numerically."""

    def _network(self, seed=0):
        from repro.nn.layers import Sequential

        rng = np.random.default_rng(seed)
        net = Sequential(Linear(6, 8, rng=1), ReLU(), Linear(8, 4, rng=2), Sigmoid(),
                         Linear(4, 1, rng=3))
        x = Tensor(rng.standard_normal((10, 6)), requires_grad=True)
        return net, x

    def _unfused_forward(self, net, x):
        """Apply each stored module one by one — the pre-fusion semantics."""
        out = x
        for name in net._order:
            out = getattr(net, name)(out)
        return out

    def test_forward_bitwise_identical(self):
        net, x = self._network()
        fused = net(x)
        # Sequential.forward fuses Linear+activation pairs; calling modules
        # individually is the unfused reference.
        unfused = self._unfused_forward(net, x)
        np.testing.assert_array_equal(fused.data, unfused.data)

    def test_gradients_bitwise_identical(self):
        net, x = self._network()
        fused = net(x)
        fused.sum().backward()
        fused_grads = [p.grad.data.copy() for p in net.parameters()]
        fused_x_grad = x.grad.data.copy()

        for p in net.parameters():
            p.zero_grad()
        x.zero_grad()
        unfused = self._unfused_forward(net, x)
        unfused.sum().backward()
        for got, p in zip(fused_grads, net.parameters()):
            np.testing.assert_array_equal(got, p.grad.data)
        np.testing.assert_array_equal(fused_x_grad, x.grad.data)

    def test_affine_matches_composition(self):
        from repro.nn import affine

        rng = np.random.default_rng(4)
        x = Tensor(rng.standard_normal((7, 5)), requires_grad=True)
        w = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)
        for activation in (None, "relu", "sigmoid", "tanh"):
            fused = affine(x, w, b, activation=activation)
            composed = x @ w + b
            if activation is not None:
                composed = getattr(composed, activation)()
            np.testing.assert_array_equal(fused.data, composed.data)
            for t in (x, w, b):
                t.zero_grad()
            fused.sum().backward()
            fused_grads = [t.grad.data.copy() for t in (x, w, b)]
            for t in (x, w, b):
                t.zero_grad()
            composed.sum().backward()
            for got, t in zip(fused_grads, (x, w, b)):
                np.testing.assert_array_equal(got, t.grad.data)

    def test_taped_and_data_backward_paths_agree(self):
        """create_graph=True (taped rules) vs False (raw-ndarray rules)."""
        net, x = self._network(seed=6)
        out = net(x)
        out.sum().backward(create_graph=True)
        taped = [p.grad.data.copy() for p in net.parameters()]
        for p in net.parameters():
            p.zero_grad()
        x.zero_grad()
        out2 = net(x)
        out2.sum().backward()
        for got, p in zip(taped, net.parameters()):
            np.testing.assert_array_equal(got, p.grad.data)
