"""Optimizer behaviour: convergence, state handling, validation."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, GradientClipper, Tensor
from repro.nn.optim import Optimizer


def quadratic_setup():
    """Minimize ||x - target||^2 from zero."""
    x = Tensor(np.zeros(3), requires_grad=True)
    target = np.array([1.0, -2.0, 0.5])
    return x, target


def run_steps(optimizer, x, target, steps):
    for _ in range(steps):
        loss = ((x - Tensor(target)) ** 2).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return x.data


class TestSGD:
    def test_converges_on_quadratic(self):
        x, target = quadratic_setup()
        result = run_steps(SGD([x], lr=0.1), x, target, 100)
        np.testing.assert_allclose(result, target, atol=1e-6)

    def test_momentum_accelerates(self):
        x1, target = quadratic_setup()
        x2, _ = quadratic_setup()
        run_steps(SGD([x1], lr=0.01), x1, target, 30)
        run_steps(SGD([x2], lr=0.01, momentum=0.9), x2, target, 30)
        err1 = np.abs(x1.data - target).sum()
        err2 = np.abs(x2.data - target).sum()
        assert err2 < err1

    def test_momentum_validation(self):
        x, _ = quadratic_setup()
        with pytest.raises(ValueError):
            SGD([x], lr=0.1, momentum=1.5)


class TestAdam:
    def test_converges_on_quadratic(self):
        x, target = quadratic_setup()
        result = run_steps(Adam([x], lr=0.1), x, target, 300)
        np.testing.assert_allclose(result, target, atol=1e-4)

    def test_skips_params_without_grad(self):
        x = Tensor(np.zeros(2), requires_grad=True)
        y = Tensor(np.ones(2), requires_grad=True)
        opt = Adam([x, y], lr=0.5)
        loss = (x * x).sum()
        loss.backward()
        opt.step()
        np.testing.assert_array_equal(y.data, np.ones(2))

    def test_beta_validation(self):
        x, _ = quadratic_setup()
        with pytest.raises(ValueError):
            Adam([x], betas=(1.0, 0.999))


class TestOptimizerBase:
    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        x, _ = quadratic_setup()
        with pytest.raises(ValueError):
            Adam([x], lr=0.0)

    def test_step_abstract(self):
        x, _ = quadratic_setup()
        with pytest.raises(NotImplementedError):
            Optimizer([x], lr=0.1).step()


class TestGradientClipper:
    def test_clips_above_threshold(self):
        x = Tensor(np.zeros(4), requires_grad=True)
        (x * Tensor(np.full(4, 10.0))).sum().backward()
        clipper = GradientClipper(max_norm=1.0)
        norm = clipper.clip([x])
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(x.grad.data) == pytest.approx(1.0)

    def test_leaves_small_gradients(self):
        x = Tensor(np.zeros(4), requires_grad=True)
        (x * Tensor(np.full(4, 0.1))).sum().backward()
        before = x.grad.data.copy()
        GradientClipper(max_norm=10.0).clip([x])
        np.testing.assert_array_equal(x.grad.data, before)

    def test_validation(self):
        with pytest.raises(ValueError):
            GradientClipper(0.0)
