"""Compiled execution wired into the real call sites, plus its telemetry.

Covers the ``ce.trainer`` / ``nn.forward`` integration bitwise against the
interpreter, the ``pace-repro analyze`` equivalence sweep, the fused-kernel
gradcheck audit, and the plan-cache statistics surfaced through
``ServeStats`` and ``PhaseProfile``.
"""

import numpy as np
import pytest

from repro.analysis.equivalence import run_equivalence
from repro.analysis.gradcheck import run_compiled_gradcheck
from repro.ce.registry import create_model
from repro.ce.trainer import _compiled_batch_loss, training_loss
from repro.datasets.registry import load_dataset
from repro.db.executor import Executor
from repro.nn.compile import (
    compile_threshold,
    compiled_execution,
    compiled_forward,
    reset_compile_state,
    set_compile_threshold,
)
from repro.nn.tensor import Tensor, grad, no_grad
from repro.perf.profile import PhaseProfile, format_profile
from repro.serve.stats import ServeStats
from repro.workload.encoding import QueryEncoder
from repro.workload.generator import WorkloadGenerator
from repro.workload.workload import Workload


@pytest.fixture(scope="module")
def env():
    database = load_dataset("tpch", scale="smoke", seed=0)
    encoder = QueryEncoder(database.schema)
    gen = WorkloadGenerator(database, seed=0)
    workload = Workload.from_queries(
        [gen.random_query(max_tables=3) for _ in range(8)], Executor(database)
    )
    encodings = np.array(workload.encode(encoder), copy=True)
    return encoder, encodings, workload.cardinalities


@pytest.fixture(autouse=True)
def _clean_compile_state():
    previous = compile_threshold()
    reset_compile_state()
    set_compile_threshold(1)
    yield
    set_compile_threshold(previous)
    reset_compile_state()


def _fresh_model(encoder, cards, seed=0):
    model = create_model("fcn", encoder, hidden_dim=8, seed=seed)
    model.calibrate_normalization(cards)
    return model


class TestCallSites:
    def test_compiled_forward_matches_interpreter(self, env):
        encoder, encodings, cards = env
        model = _fresh_model(encoder, cards)
        x = Tensor(encodings)
        with compiled_execution(False), no_grad():
            interpreted = model(x).data.copy()
        with compiled_execution(True):
            compiled = compiled_forward(model, x)
        assert compiled is not None
        np.testing.assert_array_equal(compiled.data, interpreted)

    def test_compiled_batch_loss_matches_interpreter(self, env):
        encoder, encodings, cards = env
        model = _fresh_model(encoder, cards)
        x = Tensor(encodings)
        y = Tensor(model.normalize_log(cards))
        params = [p for _, p in model.named_parameters()]
        with compiled_execution(False):
            interp_loss = training_loss(model, x, y)
            interp_grads = grad(interp_loss, params)
        with compiled_execution(True):
            compiled_loss = _compiled_batch_loss(model, x, y)
            assert compiled_loss is not None
            compiled_grads = grad(compiled_loss, params)
        assert float(compiled_loss.item()) == float(interp_loss.item())
        for gi, gc in zip(interp_grads, compiled_grads):
            np.testing.assert_array_equal(gc.data, gi.data)


class TestAnalysisGates:
    def test_equivalence_sweep_is_byte_identical(self):
        result = run_equivalence(seed=0)
        failing = [case.name for case in result.cases if not case.passed]
        assert result.passed, f"equivalence sweep failed: {failing}"
        assert result.byte_identical
        assert result.max_abs_diff == 0.0
        # Six families x (forward, train_step, incremental_update,
        # detached_steps, second_order): a shrinking case list means a
        # path went untested.
        assert len(result.cases) == 30

    def test_compiled_gradcheck_audits_fused_kernels(self):
        results = run_compiled_gradcheck()
        assert results, "compiled gradcheck produced no cases"
        for r in results:
            assert r.passed, f"{r.name}: max_abs_err={r.max_abs_err}"
            assert r.kernels, f"{r.name} audited no fused kernels"
            assert any("forward" in k for k in r.kernels)
        names = {r.name for r in results}
        assert "compiled.fcn.second_order" in names


class TestTelemetry:
    def test_serve_stats_compile_section(self, env):
        encoder, encodings, cards = env
        stats = ServeStats()
        model = _fresh_model(encoder, cards)
        with compiled_execution(True):
            assert compiled_forward(model, Tensor(encodings)) is not None
            snapshot = stats.compile_snapshot()
        assert snapshot["enabled"] is True
        assert snapshot["stats"]["plans_compiled"] >= 1
        assert stats.snapshot()["compile"]["stats"]["plans_compiled"] >= 1

    def test_serve_stats_baseline_scopes_to_session(self, env):
        encoder, encodings, cards = env
        model = _fresh_model(encoder, cards)
        with compiled_execution(True):
            assert compiled_forward(model, Tensor(encodings)) is not None
        late = ServeStats()  # constructed after the compile activity
        delta = late.compile_snapshot()["stats"]
        assert delta["plans_compiled"] == 0
        assert delta["plan_hits"] == 0

    def test_phase_profile_renders_plan_cache_table(self):
        profile = PhaseProfile(
            dataset="dmv",
            model_type="fcn",
            method="pace",
            scale="smoke",
            seed=0,
            phases={"train": 1.0},
            compile={
                "enabled": True,
                "stats": {
                    "plans_compiled": 2,
                    "plan_hits": 10,
                    "plan_misses": 3,
                    "fallback_calls": 1,
                    "fallback_reasons": {"unprofitable: thin win": 1},
                },
            },
        )
        rendered = format_profile(profile)
        assert "plan cache" in rendered
        assert "plans_compiled" in rendered
        assert "unprofitable" in rendered
        assert profile.to_json()["compile"]["stats"]["plan_hits"] == 10
