"""Tracer rejection paths: a declined trace must cost nothing but time.

A ``TraceReject`` (Dropout's per-call RNG draw, an untracked
requires-grad tensor) must leave the plan cache without a plan for the
site — only a negative entry — and the caller's interpreted branch must
produce results bitwise identical to a run where compilation was never
attempted. A shape-signature change must likewise never reuse a stale
plan traced at a different shape.
"""

from __future__ import annotations

import contextlib

import numpy as np
import pytest

from repro.nn.compile import (
    compile_threshold,
    compiled_execution,
    iter_plans,
    reset_compile_state,
    set_compile_threshold,
)
from repro.nn.compile.api import CACHE, CompiledInput, compiled_call
from repro.nn.layers import Dropout
from repro.nn.tensor import Tensor


@pytest.fixture(autouse=True)
def _fresh_compile_state():
    reset_compile_state()
    yield
    reset_compile_state()


@contextlib.contextmanager
def force_compiled():
    previous = compile_threshold()
    set_compile_threshold(1)
    try:
        with compiled_execution(True):
            yield
    finally:
        set_compile_threshold(previous)


def _dropout_body(seed: int):
    layer = Dropout(p=0.5, rng=seed)
    layer.train()

    def body(x):
        return (layer(x) * 2.0).sum()

    return body


class TestDropoutReject:
    def test_no_plan_is_cached_and_fallback_names_dropout(self):
        x = Tensor(np.linspace(-1.0, 1.0, 12).reshape(3, 4))
        with force_compiled():
            result = compiled_call(
                ("test.dropout",), _dropout_body(7), [CompiledInput(x)]
            )
        assert result is None
        assert iter_plans() == []
        reasons = [reason for _, reason in CACHE.fallbacks()]
        assert len(reasons) == 1 and "Dropout" in reasons[0]

    def test_interpreted_fallback_is_bitwise_identical(self):
        x = Tensor(np.linspace(-1.0, 1.0, 12).reshape(3, 4))
        baseline = _dropout_body(7)(Tensor(x.data.copy())).data.copy()

        body = _dropout_body(7)
        with force_compiled():
            assert compiled_call(("test.dropout",), body, [CompiledInput(x)]) is None
            # The rejected trace must not have advanced the layer's RNG:
            # the caller's interpreted branch sees the exact same draw.
            fallback = body(x).data.copy()
        assert fallback.tobytes() == baseline.tobytes()


class TestUntrackedGradReject:
    def _body_with_closure(self):
        w = Tensor(np.linspace(0.0, 1.0, 4), requires_grad=True)

        def body(x):
            return (x * w).sum()

        return body

    def test_no_plan_is_cached(self):
        x = Tensor(np.linspace(0.0, 3.0, 4))
        body = self._body_with_closure()
        with force_compiled():
            assert compiled_call(("test.closure",), body, [CompiledInput(x)]) is None
        assert iter_plans() == []
        reasons = [reason for _, reason in CACHE.fallbacks()]
        assert len(reasons) == 1 and "untracked requires-grad" in reasons[0]

    def test_interpreted_fallback_is_bitwise_identical(self):
        x = Tensor(np.linspace(0.0, 3.0, 4))
        body = self._body_with_closure()
        baseline = body(Tensor(x.data.copy())).data.copy()
        with force_compiled():
            assert compiled_call(("test.closure",), body, [CompiledInput(x)]) is None
            fallback = body(x).data.copy()
        assert fallback.tobytes() == baseline.tobytes()


class TestShapeSignatureChange:
    @staticmethod
    def _body(x):
        return (x * x + 1.0).sum()

    def test_new_shape_compiles_a_new_plan_not_a_stale_reuse(self):
        a = Tensor(np.linspace(-1.0, 1.0, 12).reshape(3, 4))
        b = Tensor(np.linspace(-2.0, 2.0, 10).reshape(2, 5))
        with force_compiled():
            (out_a,) = compiled_call(("test.shape",), self._body, [CompiledInput(a)])
            plans_after_first = iter_plans()
            assert len(plans_after_first) == 1
            (out_b,) = compiled_call(("test.shape",), self._body, [CompiledInput(b)])
        plans = iter_plans()
        # The first plan survives untouched; the new shape got its own.
        assert len(plans) == 2
        assert plans_after_first[0] in plans

        interp_a = self._body(Tensor(a.data.copy())).data
        interp_b = self._body(Tensor(b.data.copy())).data
        assert out_a.data.tobytes() == interp_a.tobytes()
        assert out_b.data.tobytes() == interp_b.tobytes()

    def test_each_signature_keys_its_own_cache_entry(self):
        a = Tensor(np.linspace(-1.0, 1.0, 12).reshape(3, 4))
        with force_compiled():
            compiled_call(("test.shape",), self._body, [CompiledInput(a)])
            # Same site, same shape: a cache hit, not a second plan.
            compiled_call(("test.shape",), self._body, [CompiledInput(a)])
        assert len(iter_plans()) == 1
