"""Compiled-plan execution semantics: bitwise outputs, sanitize, guards."""

import numpy as np
import pytest

from repro.nn.compile import (
    CompiledInput,
    CompileError,
    compile_threshold,
    compiled_call,
    compiled_execution,
    iter_plans,
    reset_compile_state,
    set_compile_threshold,
)
from repro.nn.tensor import SanitizeError, Tensor, grad, sanitize


@pytest.fixture(autouse=True)
def _clean_compile_state():
    previous = compile_threshold()
    reset_compile_state()
    set_compile_threshold(1)
    yield
    set_compile_threshold(previous)
    reset_compile_state()


def _gather_fn(x):
    # Row getitems plus reductions: every slice becomes a distinct aux
    # object during tracing, which is what the keepalive regression needs.
    rows = [x[i] for i in range(x.shape[0])]
    acc = rows[0]
    for row in rows[1:]:
        acc = acc + row
    return ((acc * acc).exp() + 1.0).log().sum()


class TestBitwiseEquivalence:
    def test_compiled_matches_interpreter_value_and_grad(self):
        xv = np.linspace(-0.9, 0.9, 15).reshape(5, 3)
        with compiled_execution(False):
            x = Tensor(xv, requires_grad=True)
            (interp_grad,) = grad(_gather_fn(x), [x])
            interp_value = float(_gather_fn(Tensor(xv)).item())
        with compiled_execution(True):
            x = Tensor(xv, requires_grad=True)
            out = compiled_call(
                ("test", "gather"),
                _gather_fn,
                [CompiledInput(x, diff=True, want_grad=True)],
            )
            assert out is not None
            (compiled_grad,) = grad(out[0], [x])
        assert float(out[0].item()) == interp_value
        np.testing.assert_array_equal(compiled_grad.data, interp_grad.data)

    def test_aux_index_cleared_after_build(self):
        # The build-time id()-keyed aux index must be dropped once the plan
        # exists: live entries would alias recycled object ids on replay.
        with compiled_execution(True):
            x = Tensor(np.linspace(-0.9, 0.9, 15).reshape(5, 3), requires_grad=True)
            compiled_call(
                ("test", "aux"),
                _gather_fn,
                [CompiledInput(x, diff=True, want_grad=True)],
            )
        (plan,) = iter_plans()
        assert plan._aux_index == {}

    def test_replay_is_deterministic_across_runs(self):
        xv = np.linspace(0.1, 2.0, 12).reshape(4, 3)
        values = []
        with compiled_execution(True):
            for _ in range(3):
                x = Tensor(xv, requires_grad=True)
                out = compiled_call(
                    ("test", "replay"),
                    _gather_fn,
                    [CompiledInput(x, diff=True, want_grad=True)],
                )
                (g,) = grad(out[0], [x])
                values.append((float(out[0].item()), g.data.copy()))
        ref_value, ref_grad = values[0]
        for value, g in values[1:]:
            assert value == ref_value
            np.testing.assert_array_equal(g, ref_grad)


class TestKernels:
    def test_kernel_names_enumerate_forward_and_backward(self):
        with compiled_execution(True):
            x = Tensor(np.linspace(-0.9, 0.9, 15).reshape(5, 3), requires_grad=True)
            compiled_call(
                ("test", "kernels"),
                _gather_fn,
                [CompiledInput(x, diff=True, want_grad=True)],
            )
        (plan,) = iter_plans()
        names = [kernel["name"] for kernel in plan.kernels()]
        assert any(":forward" in name for name in names)
        assert any(":backward" in name for name in names)
        assert all(name.startswith("test:kernels:") for name in names)


class TestGuards:
    def test_sanitize_detects_nonfinite_in_compiled_region(self):
        def fn(x):
            return (x.log() * 2.0).sum()

        with compiled_execution(True):
            out = compiled_call(
                ("test", "sanitize"), fn, [CompiledInput(Tensor(np.full((3, 3), 2.0)))]
            )
            assert out is not None
            assert np.isfinite(out[0].item())
            with sanitize(True):
                with pytest.raises(SanitizeError, match="compiled:test:sanitize"):
                    compiled_call(
                        ("test", "sanitize"),
                        fn,
                        [CompiledInput(Tensor(np.full((3, 3), -1.0)))],
                    )

    def test_stale_serial_backward_raises(self):
        def fn(x):
            return (x * x).sum()

        xv = np.linspace(1.0, 2.0, 6).reshape(2, 3)
        with compiled_execution(True):
            first = Tensor(xv, requires_grad=True)
            out = compiled_call(
                ("test", "serial"), fn, [CompiledInput(first, diff=True, want_grad=True)]
            )
            second = Tensor(xv + 1.0, requires_grad=True)
            compiled_call(
                ("test", "serial"), fn, [CompiledInput(second, diff=True, want_grad=True)]
            )
            with pytest.raises(CompileError, match="serial"):
                grad(out[0], [first])

    def test_create_graph_through_compiled_region_raises(self):
        def fn(x):
            return (x * x).sum()

        with compiled_execution(True):
            x = Tensor(np.linspace(1.0, 2.0, 6).reshape(2, 3), requires_grad=True)
            out = compiled_call(
                ("test", "create_graph"),
                fn,
                [CompiledInput(x, diff=True, want_grad=True)],
            )
            with pytest.raises(CompileError, match="create_graph"):
                grad(out[0], [x], create_graph=True)
