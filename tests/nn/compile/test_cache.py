"""``compiled_call`` caching semantics: warm-up, probe, thresholds, stats."""

import numpy as np
import pytest

from repro.nn.compile import api as compile_api
from repro.nn.compile.cache import CACHE
from repro.nn.compile import (
    CompiledInput,
    compile_stats,
    compile_threshold,
    compiled_call,
    compiled_execution,
    iter_plans,
    reset_compile_state,
    set_compile_threshold,
    stats_delta,
)
from repro.nn.layers import Dropout
from repro.nn.tensor import Tensor, grad, no_grad

XV = np.linspace(-1.0, 1.0, 12).reshape(3, 4)
WV = np.linspace(0.5, -0.5, 12).reshape(3, 4)


def _fn(x, w):
    return ((x * w).tanh() + x.sigmoid()).sum()


def _call(site, xv=XV, wv=WV, min_uses=None):
    x = Tensor(xv)
    w = Tensor(wv, requires_grad=True)
    out = compiled_call(
        site,
        _fn,
        [CompiledInput(x), CompiledInput(w, diff=True, want_grad=True)],
        min_uses=min_uses,
    )
    return out, w


@pytest.fixture(autouse=True)
def _clean_compile_state():
    previous = compile_threshold()
    reset_compile_state()
    yield
    set_compile_threshold(previous)
    reset_compile_state()


class TestWarmupAndThreshold:
    def test_warmup_interprets_then_compiles_at_threshold(self, monkeypatch):
        monkeypatch.setattr(compile_api, "_PROFIT_RATIO", float("inf"))
        set_compile_threshold(3)
        base = compile_stats()
        results = []
        with compiled_execution(True):
            for i in range(4):
                out, w = _call(("test", "warmup"))
                assert out is not None
                if i < 2:
                    assert len(iter_plans()) == 0, "warm-up call must not compile"
                (g,) = grad(out[0], [w])
                results.append((float(out[0].item()), g.data.copy()))
        assert len(iter_plans()) == 1
        delta = stats_delta(compile_stats(), base)
        assert delta["plans_compiled"] == 1
        assert delta["plan_misses"] == 3  # two warm-ups + the compiling call
        assert delta["plan_hits"] == 1
        ref_obj, ref_grad = results[0]
        for obj, g in results[1:]:
            assert obj == ref_obj
            np.testing.assert_array_equal(g, ref_grad)

    def test_min_uses_raises_warmup_window(self, monkeypatch):
        monkeypatch.setattr(compile_api, "_PROFIT_RATIO", float("inf"))
        set_compile_threshold(2)
        with compiled_execution(True):
            for _ in range(4):
                _call(("test", "min_uses"), min_uses=5)
                assert len(iter_plans()) == 0
            _call(("test", "min_uses"), min_uses=5)
        assert len(iter_plans()) == 1

    def test_threshold_one_forces_compile_and_overrides_min_uses(self):
        set_compile_threshold(1)
        with compiled_execution(True):
            out, _ = _call(("test", "force"), min_uses=64)
        assert out is not None
        assert len(iter_plans()) == 1
        # No warm-up baseline exists in force mode, so the profitability
        # probe cannot decline the plan.
        assert compile_stats()["plans_compiled"] == 1

    def test_shape_change_keys_a_new_plan(self):
        set_compile_threshold(1)
        wide_x = np.linspace(-1.0, 1.0, 20).reshape(5, 4)
        wide_w = np.linspace(0.5, -0.5, 20).reshape(5, 4)
        with compiled_execution(True):
            _call(("test", "shapes"))
            _call(("test", "shapes"), xv=wide_x, wv=wide_w)
        assert len(iter_plans()) == 2


class TestDeclines:
    def test_disabled_returns_none_without_cache_activity(self):
        set_compile_threshold(1)
        base = compile_stats()
        with compiled_execution(False):
            out, _ = _call(("test", "disabled"))
        assert out is None
        assert stats_delta(compile_stats(), base)["plan_misses"] == 0

    def test_unprofitable_probe_returns_exact_outputs_then_declines(self, monkeypatch):
        monkeypatch.setattr(compile_api, "_PROFIT_RATIO", 0.0)
        set_compile_threshold(2)
        with compiled_execution(True):
            warm, _ = _call(("test", "unprofitable"))
            probe, _ = _call(("test", "unprofitable"))
            declined, _ = _call(("test", "unprofitable"))
        assert warm is not None
        assert probe is not None, "probe outputs are exact and must be returned"
        assert float(probe[0].item()) == float(warm[0].item())
        assert declined is None, "an unprofitable key is negatively cached"
        assert len(iter_plans()) == 0
        reasons = compile_stats()["fallback_reasons"]
        assert any(r.startswith("unprofitable") for r in reasons)
        cached = [reason for _, reason in CACHE.fallbacks()]
        assert cached and all(r.startswith("unprofitable") for r in cached)

    def test_diff_inputs_under_no_grad_decline(self):
        set_compile_threshold(1)
        with compiled_execution(True), no_grad():
            out, _ = _call(("test", "no_grad"))
            again, _ = _call(("test", "no_grad"))
        assert out is None
        assert again is None
        reasons = compile_stats()["fallback_reasons"]
        assert any("grad is disabled" in r for r in reasons)

    def test_dropout_in_training_mode_declines_trace(self):
        layer = Dropout(p=0.5, rng=3)
        set_compile_threshold(1)
        with compiled_execution(True):
            out = compiled_call(
                ("test", "dropout"),
                lambda t: layer(t).sum(),
                [CompiledInput(Tensor(np.ones((4, 4))))],
            )
        assert out is None
        assert len(iter_plans()) == 0
        reasons = compile_stats()["fallback_reasons"]
        assert any("Dropout" in r for r in reasons)
