"""Property-based checks of the autodiff engine against numpy."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor, concat, maximum, minimum

finite = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


def small_arrays(max_dims=2, max_side=5):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side),
        elements=finite,
    )


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_forward_matches_numpy_elementwise(data):
    t = Tensor(data)
    np.testing.assert_allclose((t * 2 + 1).data, data * 2 + 1)
    np.testing.assert_allclose(t.tanh().data, np.tanh(data))
    np.testing.assert_allclose(t.relu().data, np.maximum(data, 0))
    np.testing.assert_allclose(t.exp().data, np.exp(data))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_gradient_is_ones(data):
    t = Tensor(data, requires_grad=True)
    t.sum().backward()
    np.testing.assert_array_equal(t.grad.data, np.ones_like(data))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_linearity_of_gradient(data):
    """d(a*x)/dx = a for any constant a."""
    t = Tensor(data, requires_grad=True)
    (t * 3.5).sum().backward()
    np.testing.assert_allclose(t.grad.data, np.full_like(data, 3.5))


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=1), small_arrays(max_dims=1))
def test_maximum_minimum_partition(a, b):
    """max(a,b) + min(a,b) == a + b elementwise."""
    n = min(len(a), len(b))
    ta, tb = Tensor(a[:n]), Tensor(b[:n])
    total = maximum(ta, tb).data + minimum(ta, tb).data
    np.testing.assert_allclose(total, a[:n] + b[:n])


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=1))
def test_detach_shares_values_but_not_graph(data):
    t = Tensor(data, requires_grad=True)
    d = t.detach()
    np.testing.assert_array_equal(d.data, t.data)
    assert not d.requires_grad


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, (3, 2), elements=finite),
    arrays(np.float64, (3, 4), elements=finite),
)
def test_concat_forward_matches_numpy(a, b):
    out = concat([Tensor(a), Tensor(b)], axis=1)
    np.testing.assert_array_equal(out.data, np.concatenate([a, b], axis=1))


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (4, 3), elements=finite))
def test_mean_gradient_uniform(data):
    t = Tensor(data, requires_grad=True)
    t.mean().backward()
    np.testing.assert_allclose(t.grad.data, np.full_like(data, 1.0 / data.size))


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (2, 3), elements=finite),
       arrays(np.float64, (3, 4), elements=finite))
def test_matmul_forward_matches_numpy(a, b):
    np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)
