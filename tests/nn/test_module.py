"""Module container semantics: registration, cloning, state dicts."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, Sequential, Tensor, mlp
from repro.nn.layers import Dropout


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(3, 4, rng=0)
        self.fc2 = Linear(4, 2, rng=1)
        self.scale = Parameter(np.ones(2))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestRegistration:
    def test_named_parameters_are_dotted_and_complete(self):
        net = TinyNet()
        names = {name for name, _ in net.named_parameters()}
        assert names == {
            "fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias", "scale",
        }

    def test_num_parameters_counts_scalars(self):
        net = TinyNet()
        assert net.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2 + 2

    def test_getattr_raises_for_unknown(self):
        net = TinyNet()
        with pytest.raises(AttributeError):
            net.nonexistent

    def test_zero_grad_clears_all(self):
        net = TinyNet()
        out = net(Tensor(np.ones((2, 3)))).sum()
        out.backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2, rng=0), Dropout(0.5, rng=0))
        seq.eval()
        assert all(not m.training for m in seq)
        seq.train()
        assert all(m.training for m in seq)


class TestStateDict:
    def test_roundtrip(self):
        a, b = TinyNet(), TinyNet()
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(
            a.fc1.weight.data, b.fc1.weight.data
        )

    def test_missing_key_rejected(self):
        net = TinyNet()
        state = net.state_dict()
        state.pop("scale")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        net = TinyNet()
        state = net.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        net = TinyNet()
        state = net.state_dict()
        state["scale"] = np.zeros(3)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_state_dict_is_a_copy(self):
        net = TinyNet()
        state = net.state_dict()
        state["scale"][:] = 99.0
        assert net.scale.data[0] == 1.0


class TestFunctionalClone:
    def test_clone_substitutes_parameters(self):
        net = TinyNet()
        x = Tensor(np.ones((1, 3)))
        theta = Tensor(np.zeros_like(net.scale.data), requires_grad=True)
        clone = net.clone_with_parameters({"scale": theta})
        out = clone(x)
        np.testing.assert_allclose(out.data, np.zeros((1, 2)))

    def test_clone_shares_untouched_parameters(self):
        net = TinyNet()
        clone = net.clone_with_parameters({})
        assert clone.fc1.weight is net.fc1.weight

    def test_clone_rejects_unknown_names(self):
        net = TinyNet()
        with pytest.raises(KeyError):
            net.clone_with_parameters({"nope": Tensor(np.zeros(1))})

    def test_gradient_flows_through_clone_to_substitute(self):
        net = TinyNet()
        theta = Tensor(np.ones(2) * 2.0, requires_grad=True)
        clone = net.clone_with_parameters({"scale": theta})
        out = clone(Tensor(np.ones((1, 3)))).sum()
        out.backward()
        assert theta.grad is not None
        # original untouched
        assert net.scale.grad is None

    def test_clone_original_forward_unchanged(self):
        net = TinyNet()
        x = Tensor(np.ones((2, 3)))
        before = net(x).data.copy()
        net.clone_with_parameters({"scale": Tensor(np.zeros(2))})
        np.testing.assert_array_equal(net(x).data, before)


class TestMlpFactory:
    def test_layer_count(self):
        net = mlp(4, [8, 8], 1, rng=0)
        # Linear, ReLU, Linear, ReLU, Linear
        assert len(net) == 5

    def test_final_activation_appended(self):
        from repro.nn import Sigmoid

        net = mlp(4, [8], 1, rng=0, final_activation=Sigmoid())
        out = net(Tensor(np.zeros((3, 4))))
        assert np.all((out.data > 0) & (out.data < 1))

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 4, rng=0)
