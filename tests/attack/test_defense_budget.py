"""Section 8 extensions: classifier defense, robustness advisor, budgets."""

import numpy as np
import pytest

from repro.attack import (
    PenaltyBudget,
    PoisonClassifier,
    PoisonQueryGenerator,
    poisoning_influence,
    recommend_robust_model,
    select_most_effective,
)
from repro.harness import run_attack
from repro.utils.errors import TrainingError


class TestPoisonClassifier:
    def _balanced_sets(self, scenario, outcome):
        normal = scenario.train_workload.encode(scenario.encoder)
        poison = scenario.encoder.encode_many(outcome.poison_queries)
        # balance the classes (the poisoning workload is only ~5-20% of the
        # historical one, exactly as in the paper's setting)
        repeat = max(len(normal) // max(len(poison), 1), 1)
        return normal, np.tile(poison, (repeat, 1))

    def test_separates_undisguised_poison_from_history(self, dmv_scenario):
        """Detector-free PACE queries are separable — the defense works on
        attackers that skip the distribution-matching step."""
        scenario = dmv_scenario
        outcome = run_attack(scenario, "pace", use_detector=False)
        normal, poison = self._balanced_sets(scenario, outcome)
        clf = PoisonClassifier(scenario.encoder.dim, seed=0)
        losses = clf.fit(normal, poison, epochs=80, seed=0)
        assert losses[-1] < losses[0]
        assert clf.accuracy(normal, poison) > 0.6

    def test_filter_reduces_attack_damage(self, dmv_scenario):
        """Training a classifier on PACE output and installing it as the
        DBMS's anomaly filter blunts a repeat (undisguised) attack — the
        paper's first future-work defense."""
        scenario = dmv_scenario
        outcome = run_attack(scenario, "pace", use_detector=False)
        normal, poison = self._balanced_sets(scenario, outcome)
        clf = PoisonClassifier(scenario.encoder.dim, seed=0)
        clf.fit(normal, poison, epochs=80, seed=0)

        scenario.reset()
        poison_enc = scenario.encoder.encode_many(outcome.poison_queries)
        flagged = clf.predict(poison_enc)
        normal_flagged = clf.predict(scenario.train_workload.encode(scenario.encoder))
        # flags poison at a higher rate than it false-positives on history
        assert flagged.mean() >= normal_flagged.mean()
        scenario.reset()

    def test_needs_both_classes(self):
        clf = PoisonClassifier(4, seed=0)
        with pytest.raises(TrainingError):
            clf.fit(np.zeros((0, 4)), np.ones((3, 4)))


class TestRobustnessAdvisor:
    def test_recommends_least_degraded(self):
        report = recommend_robust_model({"fcn": 30.0, "linear": 1.1, "mscn": 12.0})
        assert report.recommended == "linear"
        assert [name for name, _ in report.ranking()] == ["linear", "mscn", "fcn"]

    def test_empty_rejected(self):
        with pytest.raises(TrainingError):
            recommend_robust_model({})


class TestBudget:
    def test_influence_scores_shape(self, dmv_scenario, dmv_surrogate):
        scenario = dmv_scenario
        outcome = run_attack(scenario, "random")
        queries = outcome.poison_queries[:8]
        cards = scenario.executor.count_many(queries)
        scores = poisoning_influence(
            dmv_surrogate, queries, cards, scenario.test_workload, update_steps=2
        )
        assert scores.shape == (8,)
        assert np.all(scores >= 0)

    def test_select_most_effective_respects_budget(self, dmv_scenario, dmv_surrogate):
        scenario = dmv_scenario
        outcome = run_attack(scenario, "random")
        queries = outcome.poison_queries[:10]
        cards = scenario.executor.count_many(queries)
        chosen = select_most_effective(
            dmv_surrogate, queries, cards, scenario.test_workload, budget=4
        )
        assert len(chosen) == 4
        assert all(q in queries for q in chosen)

    def test_budget_larger_than_pool_returns_all(self, dmv_scenario, dmv_surrogate):
        scenario = dmv_scenario
        outcome = run_attack(scenario, "random")
        queries = outcome.poison_queries[:3]
        cards = scenario.executor.count_many(queries)
        chosen = select_most_effective(
            dmv_surrogate, queries, cards, scenario.test_workload, budget=10
        )
        assert chosen == queries

    def test_budget_validation(self, dmv_scenario, dmv_surrogate):
        with pytest.raises(TrainingError):
            select_most_effective(
                dmv_surrogate, [], np.array([]), dmv_scenario.test_workload, budget=0
            )

    def test_penalty_budget_differentiable(self, dmv_scenario):
        scenario = dmv_scenario
        gen = PoisonQueryGenerator(scenario.encoder, seed=0)
        batch = gen.generate(6, np.random.default_rng(0))
        penalty = PenaltyBudget(strength=0.5).penalty(gen, batch.encodings)
        penalty.backward()
        params = list(gen.g_low.parameters()) + list(gen.g_rng.parameters())
        assert any(p.grad is not None for p in params)
