"""Surrogate acquisition: type speculation and imitation training."""

import numpy as np
import pytest

from repro.attack import (
    SurrogateConfig,
    output_agreement,
    parameter_similarity,
    speculate_model_type,
    train_candidates,
    train_surrogate,
)
from repro.attack.surrogate import cosine_similarity, performance_vector
from repro.ce import TrainConfig, create_model
from repro.utils.errors import TrainingError
from repro.workload import WorkloadGenerator


class TestCosine:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_zero_vector(self):
        assert cosine_similarity(np.zeros(2), np.ones(2)) == 0.0


class TestSpeculation:
    def test_speculates_correct_type_fcn(self, dmv_scenario):
        scenario = dmv_scenario
        candidates = train_candidates(
            scenario.encoder,
            scenario.train_workload,
            hidden_dim=16,
            train_config=TrainConfig(epochs=15, seed=0),
            seed=0,
        )
        generator = WorkloadGenerator(scenario.database, scenario.executor, seed=5)
        probes = generator.probe_workloads(queries_per_group=6)
        result = speculate_model_type(scenario.deployed, candidates, probes)
        assert result.speculated_type in candidates
        assert set(result.similarities) == set(candidates)
        # Correct speculation is the common case at this scale; at minimum
        # the true type must rank in the top half.
        ranked = sorted(result.similarities, key=result.similarities.get, reverse=True)
        assert ranked.index("fcn") <= 2

    def test_empty_candidates_rejected(self, dmv_scenario):
        with pytest.raises(TrainingError):
            speculate_model_type(dmv_scenario.deployed, {}, [])

    def test_performance_vector_shape(self, dmv_scenario):
        scenario = dmv_scenario
        generator = WorkloadGenerator(scenario.database, scenario.executor, seed=6)
        probes = generator.probe_workloads(queries_per_group=4)
        vec = performance_vector(scenario.deployed.explain_many, probes)
        assert vec.shape == (2 * len(probes),)


class TestSurrogateTraining:
    def test_combined_beats_direct_imitation(self, dmv_scenario):
        """The Fig. 10 claim: Eq. 7 imitates the black box better than Eq. 6."""
        scenario = dmv_scenario
        bb_estimates = scenario.deployed.explain_many(scenario.test_workload.queries)
        agreements = {}
        for strategy in ("combined", "direct"):
            surrogate = train_surrogate(
                "fcn",
                scenario.encoder,
                scenario.train_workload,
                scenario.deployed,
                SurrogateConfig(strategy=strategy, epochs=30, hidden_dim=16, seed=0),
            )
            agreements[strategy] = output_agreement(
                surrogate, bb_estimates, scenario.test_workload.queries
            )
        assert agreements["combined"] <= agreements["direct"] * 1.5

    def test_surrogate_tracks_black_box(self, dmv_scenario):
        scenario = dmv_scenario
        surrogate = train_surrogate(
            "fcn",
            scenario.encoder,
            scenario.train_workload,
            scenario.deployed,
            SurrogateConfig(epochs=40, hidden_dim=16, seed=0),
        )
        bb = scenario.deployed.explain_many(scenario.test_workload.queries)
        agreement = output_agreement(surrogate, bb, scenario.test_workload.queries)
        # mean |log est difference| well below one order of magnitude
        assert agreement < np.log(10)

    def test_unknown_strategy_rejected(self, dmv_scenario):
        scenario = dmv_scenario
        with pytest.raises(TrainingError):
            train_surrogate(
                "fcn",
                scenario.encoder,
                scenario.train_workload,
                scenario.deployed,
                SurrogateConfig(strategy="quantum"),
            )


class TestParameterSimilarity:
    def test_same_model_is_one(self, dmv_scenario):
        model = create_model("fcn", dmv_scenario.encoder, hidden_dim=8, seed=0)
        assert parameter_similarity(model, model) == pytest.approx(1.0)

    def test_architecture_mismatch_rejected(self, dmv_scenario):
        a = create_model("fcn", dmv_scenario.encoder, hidden_dim=8, seed=0)
        b = create_model("fcn", dmv_scenario.encoder, hidden_dim=16, seed=0)
        with pytest.raises(TrainingError):
            parameter_similarity(a, b)
