"""VAE anomaly detector: training, thresholds, filters."""

import numpy as np
import pytest

from repro.attack import VAEAnomalyDetector
from repro.nn import Tensor
from repro.utils.errors import TrainingError


def history_sample(n=300, dim=12, seed=0):
    """Synthetic 'historical workload' encodings on a low-dim manifold."""
    rng = np.random.default_rng(seed)
    latent = rng.uniform(size=(n, 3))
    mix = rng.uniform(size=(3, dim))
    data = np.clip(latent @ mix / 3.0 + rng.normal(0, 0.02, size=(n, dim)), 0, 1)
    return data


class TestTraining:
    def test_loss_decreases(self):
        data = history_sample()
        det = VAEAnomalyDetector(input_dim=12, seed=0)
        losses = det.fit(data, epochs=30, seed=0)
        assert losses[-1] < losses[0]

    def test_threshold_calibrated_to_quantile(self):
        data = history_sample()
        det = VAEAnomalyDetector(input_dim=12, seed=0)
        det.fit(data, epochs=30, threshold_quantile=0.95, seed=0)
        flagged = det.is_abnormal(data).mean()
        assert flagged == pytest.approx(0.05, abs=0.03)

    def test_too_few_samples_rejected(self):
        det = VAEAnomalyDetector(input_dim=12, seed=0)
        with pytest.raises(TrainingError):
            det.fit(np.zeros((1, 12)))

    def test_wrong_width_rejected(self):
        det = VAEAnomalyDetector(input_dim=12, seed=0)
        with pytest.raises(TrainingError):
            det.fit(np.zeros((10, 5)))

    def test_set_threshold_validation(self):
        det = VAEAnomalyDetector(input_dim=12, seed=0)
        det.set_threshold(0.07)
        assert det.threshold == 0.07
        with pytest.raises(TrainingError):
            det.set_threshold(0.0)


class TestDetection:
    def test_off_manifold_flagged_more(self):
        data = history_sample()
        det = VAEAnomalyDetector(input_dim=12, seed=0)
        det.fit(data, epochs=40, seed=0)
        rng = np.random.default_rng(9)
        off_manifold = rng.uniform(size=(100, 12))  # not on the 3-dim manifold
        on_errors = det.reconstruction_errors(history_sample(seed=5))
        off_errors = det.reconstruction_errors(off_manifold)
        assert off_errors.mean() > on_errors.mean()

    def test_reconstruction_deterministic_in_eval(self):
        data = history_sample()
        det = VAEAnomalyDetector(input_dim=12, seed=0)
        det.fit(data, epochs=5, seed=0)
        a = det.reconstruction_errors(data[:10])
        b = det.reconstruction_errors(data[:10])
        np.testing.assert_array_equal(a, b)

    def test_reconstruction_loss_differentiable(self):
        data = history_sample()
        det = VAEAnomalyDetector(input_dim=12, seed=0)
        det.fit(data, epochs=5, seed=0)
        x = Tensor(data[:4], requires_grad=True)
        det.reconstruction_loss(x).backward()
        assert np.abs(x.grad.data).sum() > 0

    def test_abnormal_filter_callable(self):
        from repro.datasets import load_dataset
        from repro.workload import QueryEncoder, WorkloadGenerator

        db = load_dataset("dmv", scale="smoke", seed=0)
        enc = QueryEncoder(db.schema)
        gen = WorkloadGenerator(db, seed=0)
        queries = [gen.random_query() for _ in range(20)]
        det = VAEAnomalyDetector(input_dim=enc.dim, seed=0)
        det.fit(enc.encode_many(queries), epochs=10, seed=0)
        flags = det.abnormal_filter(enc)(queries[:5])
        assert flags.shape == (5,)
        assert flags.dtype == bool
