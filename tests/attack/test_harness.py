"""Integration checks over the shared experiment harness."""

import numpy as np
import pytest

from repro.harness import (
    METHODS,
    e2e_join_queries,
    get_scenario,
    run_attack,
    run_e2e,
)
from repro.utils.errors import ReproError


class TestScenario:
    def test_cached_scenario_identity(self):
        a = get_scenario("dmv", "fcn", scale="smoke", seed=0)
        b = get_scenario("dmv", "fcn", scale="smoke", seed=0)
        assert a is b

    def test_reset_restores_clean_model(self, dmv_scenario):
        clean = dmv_scenario.clean_q_errors()
        run_attack(dmv_scenario, "pace")
        np.testing.assert_array_equal(dmv_scenario.clean_q_errors(), clean)


class TestRunAttack:
    def test_clean_method_is_identity(self, dmv_scenario):
        outcome = run_attack(dmv_scenario, "clean")
        np.testing.assert_array_equal(outcome.before, outcome.after)
        assert outcome.degradation == pytest.approx(1.0)
        assert outcome.poison_queries == []

    def test_unknown_method_rejected(self, dmv_scenario):
        with pytest.raises(ReproError):
            run_attack(dmv_scenario, "voodoo")

    def test_outcome_fields_populated(self, dmv_scenario):
        outcome = run_attack(dmv_scenario, "pace")
        assert outcome.divergence > 0
        assert outcome.train_seconds > 0
        assert outcome.attack_seconds >= 0
        assert len(outcome.objective_curve) > 0
        summary = outcome.summary()
        assert summary.max >= summary.p95

    def test_method_ordering_pace_strongest(self, dmv_scenario):
        """The core Fig. 6-9 shape on DMV: PACE beats the weak baselines."""
        degradations = {
            m: run_attack(dmv_scenario, m).degradation
            for m in ("clean", "random", "lbg", "pace")
        }
        assert degradations["pace"] > degradations["random"]
        assert degradations["pace"] > degradations["clean"]

    def test_count_override(self, dmv_scenario):
        outcome = run_attack(dmv_scenario, "random", count=7)
        assert len(outcome.poison_queries) == 7


class TestE2E:
    def test_join_queries_multi_table(self, tpch_scenario):
        queries = e2e_join_queries(tpch_scenario, count=5)
        assert len(queries) == 5
        assert all(q.num_tables >= 2 for q in queries)

    def test_pace_never_dramatically_speeds_execution(self, tpch_scenario):
        """Table 5's shape check (weak form): poisoning cannot make the
        optimizer *much* faster than the clean estimator. The strong form
        (poisoned is slower) holds in expectation and is reported by
        ``bench_table5_e2e_latency``; a single smoke-scale run can dodge a
        nested-loop trap by uniformly overestimating, so it is not asserted
        here."""
        clean_seconds = run_e2e(tpch_scenario, "clean", num_queries=6)
        pace_seconds = run_e2e(tpch_scenario, "pace", num_queries=6)
        assert pace_seconds >= clean_seconds * 0.3

    def test_methods_cover_paper_list(self):
        assert METHODS == ("clean", "random", "lbs", "greedy", "lbg", "pace")
