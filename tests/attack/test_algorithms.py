"""Generator-training algorithms and the end-to-end attack effect."""

import numpy as np
import pytest

from repro.attack import (
    GeneratorTrainConfig,
    PoisonQueryGenerator,
    train_generator_accelerated,
    train_generator_basic,
)
from repro.ce import evaluate_q_errors
from repro.harness import get_detector, run_attack


def small_config(seed=0, iterations=10, detector=None):
    return GeneratorTrainConfig(
        poison_batch=16,
        update_steps=3,
        iterations=iterations,
        outer_loops=2,
        inner_steps=3,
        detector=detector,
        seed=seed,
    )


class TestAccelerated:
    def test_produces_satisfiable_queries(self, dmv_scenario, dmv_surrogate):
        scenario = dmv_scenario
        gen = PoisonQueryGenerator(scenario.encoder, seed=0)
        result = train_generator_accelerated(
            gen, dmv_surrogate, scenario.executor, scenario.test_workload,
            small_config(),
        )
        queries = gen.generate_queries(16, np.random.default_rng(3))
        cards = scenario.executor.count_many(queries)
        assert (cards > 0).mean() > 0.5
        assert len(result.objective_curve) == 10
        assert result.wall_seconds > 0
        assert result.label_executions > 0

    def test_attack_degrades_black_box(self, dmv_scenario):
        """The headline result: PACE raises the deployed model's Q-error.

        Typical runs land at 8-35x; the threshold is deliberately loose
        because type speculation (latency-based, faithful to the paper) can
        hand the attack a weaker surrogate under timing jitter.
        """
        outcome = run_attack(dmv_scenario, "pace")
        assert outcome.degradation > 1.5

    def test_attack_beats_random(self, dmv_scenario):
        pace = run_attack(dmv_scenario, "pace")
        random = run_attack(dmv_scenario, "random")
        assert pace.degradation > random.degradation

    def test_scenario_restored_after_attack(self, dmv_scenario):
        before = evaluate_q_errors(
            dmv_scenario.model, dmv_scenario.test_workload
        ).mean()
        run_attack(dmv_scenario, "pace")
        after = evaluate_q_errors(
            dmv_scenario.model, dmv_scenario.test_workload
        ).mean()
        assert after == pytest.approx(before)


class TestBasic:
    def test_basic_runs_and_trains(self, dmv_scenario, dmv_surrogate):
        scenario = dmv_scenario
        gen = PoisonQueryGenerator(scenario.encoder, seed=0)
        result = train_generator_basic(
            gen, dmv_surrogate, scenario.executor, scenario.test_workload,
            small_config(),
        )
        # q outer loops x m inner steps generator updates
        assert len(result.objective_curve) == 2 * 3
        assert result.wall_seconds > 0

    def test_accelerated_faster_than_basic_per_update(self, dmv_scenario, dmv_surrogate):
        """Lemma 2's shape: basic spends more wall time per generator update."""
        scenario = dmv_scenario
        gen_a = PoisonQueryGenerator(scenario.encoder, seed=0)
        cfg_a = small_config(iterations=6)
        res_a = train_generator_accelerated(
            gen_a, dmv_surrogate, scenario.executor, scenario.test_workload, cfg_a
        )
        gen_b = PoisonQueryGenerator(scenario.encoder, seed=0)
        cfg_b = small_config()
        cfg_b.outer_loops, cfg_b.inner_steps = 3, 2
        res_b = train_generator_basic(
            gen_b, dmv_surrogate, scenario.executor, scenario.test_workload, cfg_b
        )
        per_update_a = res_a.wall_seconds / len(res_a.objective_curve)
        per_update_b = res_b.wall_seconds / len(res_b.objective_curve)
        # basic pays the extra commit phases; allow generous slack for noise
        assert per_update_a < per_update_b * 3


class TestDetectorInLoop:
    def test_detector_reduces_divergence(self, dmv_scenario):
        with_det = run_attack(dmv_scenario, "pace", use_detector=True)
        without_det = run_attack(dmv_scenario, "pace", use_detector=False)
        # Fig. 13's shape: detector keeps queries closer to the workload.
        assert with_det.divergence <= without_det.divergence * 1.5

    def test_flag_counts_recorded(self, dmv_scenario, dmv_surrogate):
        scenario = dmv_scenario
        detector = get_detector(scenario)
        gen = PoisonQueryGenerator(scenario.encoder, seed=0)
        result = train_generator_accelerated(
            gen, dmv_surrogate, scenario.executor, scenario.test_workload,
            small_config(detector=detector),
        )
        assert len(result.flagged_counts) == 10


class TestEmptinessHandling:
    def test_empty_queries_never_dominate(self, tpch_scenario):
        outcome = run_attack(tpch_scenario, "pace")
        counts = [
            tpch_scenario.executor.try_count(q) for q in outcome.poison_queries
        ]
        # usable = labeled successfully and non-empty; oversized (timeout)
        # queries count as unusable, exactly as the DBMS treats them
        usable = [c is not None and c > 0 for c in counts]
        assert np.mean(usable) >= 0.5

    def test_objective_curve_finite(self, dmv_scenario, dmv_surrogate):
        scenario = dmv_scenario
        gen = PoisonQueryGenerator(scenario.encoder, seed=1)
        result = train_generator_accelerated(
            gen, dmv_surrogate, scenario.executor, scenario.test_workload,
            small_config(seed=1),
        )
        assert np.all(np.isfinite(result.objective_curve))
