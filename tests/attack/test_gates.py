"""Detector/classifier defenses as first-class gates through execute()."""

import numpy as np
import pytest

from repro.attack import ClassifierGate, DetectorGate, PoisonClassifier
from repro.ce import CallableGate, DeployedEstimator, Gate
from repro.harness import get_detector
from repro.utils.clock import FakeClock, use_clock


@pytest.fixture()
def fresh_deployed(dmv_scenario):
    dmv_scenario.reset()
    return DeployedEstimator(
        dmv_scenario.model, dmv_scenario.executor, update_steps=3
    )


class TestGateProtocol:
    def test_base_gate_is_a_no_op(self, dmv_scenario):
        gate = Gate()
        queries = dmv_scenario.train_workload.queries[:4]
        assert not gate.screen(queries).any()
        assert gate.review_update(dmv_scenario.model, dmv_scenario.train_workload)

    def test_callable_gate_wraps_legacy_filter(self, dmv_scenario):
        gate = CallableGate(lambda qs: np.ones(len(qs), dtype=bool), name="legacy")
        assert gate.screen(dmv_scenario.train_workload.queries[:3]).all()
        assert gate.name == "legacy"

    def test_screening_gate_rejections_are_attributed(self, fresh_deployed, dmv_scenario):
        class RejectFirst(Gate):
            name = "reject-first"

            def screen(self, queries):
                mask = np.zeros(len(queries), dtype=bool)
                mask[0] = True
                return mask

        fresh_deployed.add_gate(RejectFirst())
        report = fresh_deployed.execute(dmv_scenario.train_workload.queries[:5])
        assert report.executed == 5
        assert report.rejected == 1
        assert report.rejected_by == {"reject-first": 1}
        assert report.updated and not report.rolled_back

    def test_review_veto_rolls_back_parameters(self, fresh_deployed, dmv_scenario):
        class Veto(Gate):
            name = "veto"

            def review_update(self, model, workload):
                return False

        before = fresh_deployed.snapshot()
        fresh_deployed.add_gate(Veto())
        report = fresh_deployed.execute(dmv_scenario.train_workload.queries[:5])
        assert report.rolled_back and not report.updated
        assert report.update_losses  # the update ran before being vetoed
        after = fresh_deployed.snapshot()
        assert all(np.array_equal(before[k], after[k]) for k in before)


class TestDetectorGate:
    def test_screen_matches_detector_and_stamps_clock(self, dmv_scenario):
        detector = get_detector(dmv_scenario)
        gate = detector.as_gate(dmv_scenario.encoder)
        queries = dmv_scenario.train_workload.queries[:6]
        with use_clock(FakeClock(tick=1.0, start=100.0)):
            mask = gate.screen(queries)
            gate.screen(queries)
        expected = detector.is_abnormal(dmv_scenario.encoder.encode_many(queries))
        np.testing.assert_array_equal(mask, expected)
        assert [obs.at for obs in gate.observations] == [101.0, 102.0]
        assert all(obs.total == 6 for obs in gate.observations)
        assert gate.observations[0].flagged == int(expected.sum())

    def test_flagging_detector_blocks_update_through_execute(
        self, fresh_deployed, dmv_scenario
    ):
        detector = get_detector(dmv_scenario)
        previous = detector.threshold
        try:
            detector.set_threshold(1e-12)  # everything is abnormal now
            gate = detector.as_gate(dmv_scenario.encoder)
            fresh_deployed.add_gate(gate)
            before = fresh_deployed.snapshot()
            report = fresh_deployed.execute(dmv_scenario.train_workload.queries[:5])
        finally:
            detector.set_threshold(previous)
        assert report.rejected == 5
        assert report.rejected_by == {"vae-detector": 5}
        assert not report.updated
        after = fresh_deployed.snapshot()
        assert all(np.array_equal(before[k], after[k]) for k in before)
        assert gate.observations[0].flagged == 5


class TestClassifierGate:
    @pytest.fixture(scope="class")
    def classifier(self, dmv_scenario):
        normal = dmv_scenario.train_workload.encode(dmv_scenario.encoder)
        rng_shift = np.roll(normal, 1, axis=1) + 0.75  # crude stand-in poison
        clf = PoisonClassifier(dmv_scenario.encoder.dim, hidden_dim=16, seed=0)
        clf.fit(normal, rng_shift, epochs=30, seed=0)
        return clf

    def test_as_gate_screens_like_predict(self, classifier, dmv_scenario):
        gate = classifier.as_gate(dmv_scenario.encoder, threshold=0.5)
        assert isinstance(gate, ClassifierGate)
        queries = dmv_scenario.train_workload.queries[:8]
        expected = classifier.predict(
            dmv_scenario.encoder.encode_many(queries), threshold=0.5
        )
        np.testing.assert_array_equal(gate.screen(queries), expected)

    def test_gate_accounting_through_execute(
        self, classifier, fresh_deployed, dmv_scenario
    ):
        gate = classifier.as_gate(dmv_scenario.encoder, threshold=0.5)
        fresh_deployed.add_gate(gate)
        queries = dmv_scenario.train_workload.queries[:8]
        flagged = int(gate.screen(queries).sum())
        report = fresh_deployed.execute(queries)
        assert report.rejected == flagged
        if flagged:
            assert report.rejected_by == {"poison-classifier": flagged}
        else:
            assert report.rejected_by == {}
