"""Shared fixtures for attack tests: a small trained scenario on DMV."""

import pytest

from repro.harness import get_scenario, get_surrogate
from repro.utils.clock import FakeClock, use_clock


@pytest.fixture(autouse=True)
def deterministic_clock():
    """Pin latency measurements so type speculation cannot flake.

    Speculation compares measured per-query latencies (Section 4.1); under
    scheduler jitter it can hand the attack a surrogate of the wrong model
    family, which tanks the end-to-end degradation assertions. A FakeClock
    makes the latency section of every performance vector a constant, so
    speculation decides on the shape features alone — deterministically.
    """
    with use_clock(FakeClock()):
        yield


@pytest.fixture(scope="session")
def dmv_scenario():
    scenario = get_scenario("dmv", "fcn", scale="smoke", seed=0)
    # Seat a surrogate of the black box's true family (the Table 7
    # known-type path). Speculation has its own tests; the end-to-end
    # assertions here should not ride on its weak smoke-scale signal.
    get_surrogate(scenario, model_type=scenario.model_type)
    return scenario


@pytest.fixture(scope="session")
def tpch_scenario():
    scenario = get_scenario("tpch", "fcn", scale="smoke", seed=0)
    get_surrogate(scenario, model_type=scenario.model_type)
    return scenario


@pytest.fixture(scope="session")
def dmv_surrogate(dmv_scenario):
    return get_surrogate(dmv_scenario)
