"""Shared fixtures for attack tests: a small trained scenario on DMV."""

import pytest

from repro.harness import get_scenario, get_surrogate


@pytest.fixture(scope="session")
def dmv_scenario():
    return get_scenario("dmv", "fcn", scale="smoke", seed=0)


@pytest.fixture(scope="session")
def tpch_scenario():
    return get_scenario("tpch", "fcn", scale="smoke", seed=0)


@pytest.fixture(scope="session")
def dmv_surrogate(dmv_scenario):
    return get_surrogate(dmv_scenario)
