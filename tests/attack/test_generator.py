"""The three-headed poisoning-query generator."""

import numpy as np
import pytest

from repro.attack import PoisonQueryGenerator, project_to_valid_join
from repro.datasets import load_dataset
from repro.utils.errors import QueryError
from repro.workload import QueryEncoder


@pytest.fixture(scope="module")
def imdb_encoder():
    db = load_dataset("imdb", scale="smoke", seed=0)
    return db, QueryEncoder(db.schema)


@pytest.fixture(scope="module")
def dmv_encoder():
    db = load_dataset("dmv", scale="smoke", seed=0)
    return db, QueryEncoder(db.schema)


class TestProjection:
    def test_projection_always_valid(self, imdb_encoder):
        db, _enc = imdb_encoder
        rng = np.random.default_rng(0)
        for _ in range(25):
            scores = rng.uniform(size=db.schema.num_tables)
            binary = project_to_valid_join(db.schema, scores)
            tables = {
                db.schema.table_names[i] for i in np.nonzero(binary)[0]
            }
            assert db.schema.is_valid_join_set(tables)

    def test_projection_keeps_top_table(self, imdb_encoder):
        db, _enc = imdb_encoder
        scores = np.zeros(db.schema.num_tables)
        idx = db.schema.table_index("cast_info")
        scores[idx] = 0.9
        binary = project_to_valid_join(db.schema, scores)
        assert binary[idx] == 1.0


class TestGeneration:
    def test_batch_shapes(self, imdb_encoder):
        _db, enc = imdb_encoder
        gen = PoisonQueryGenerator(enc, seed=0)
        batch = gen.generate(6, np.random.default_rng(0))
        assert batch.encodings.shape == (6, enc.dim)
        assert batch.join_binary.shape == (6, enc.num_tables)
        assert batch.join_probs.shape == (6, enc.num_tables)

    def test_join_patterns_valid(self, imdb_encoder):
        db, enc = imdb_encoder
        gen = PoisonQueryGenerator(enc, seed=0)
        batch = gen.generate(12, np.random.default_rng(1))
        for row in batch.join_binary:
            tables = {db.schema.table_names[i] for i in np.nonzero(row)[0]}
            assert db.schema.is_valid_join_set(tables)

    def test_bounds_are_ordered_and_in_range(self, imdb_encoder):
        _db, enc = imdb_encoder
        gen = PoisonQueryGenerator(enc, seed=0)
        batch = gen.generate(8, np.random.default_rng(2))
        bounds = batch.encodings.data[:, enc.predicate_slice()].reshape(8, -1, 2)
        assert np.all(bounds[:, :, 0] <= bounds[:, :, 1] + 1e-12)
        assert np.all(bounds >= 0.0) and np.all(bounds <= 1.0)

    def test_masked_attributes_fully_open(self, imdb_encoder):
        db, enc = imdb_encoder
        gen = PoisonQueryGenerator(enc, seed=0)
        batch = gen.generate(8, np.random.default_rng(3))
        mask = enc.expand_attribute_mask(batch.join_binary)
        bounds = batch.encodings.data[:, enc.predicate_slice()].reshape(8, -1, 2)
        closed = mask == 0
        np.testing.assert_array_equal(bounds[:, :, 0][closed], 0.0)
        np.testing.assert_array_equal(bounds[:, :, 1][closed], 1.0)

    def test_queries_decodable_and_valid(self, imdb_encoder):
        db, enc = imdb_encoder
        gen = PoisonQueryGenerator(enc, seed=0)
        queries = gen.generate_queries(10, np.random.default_rng(4))
        assert len(queries) == 10
        for q in queries:
            assert db.schema.is_valid_join_set(q.tables)

    def test_single_table_schema_trivial_join(self, dmv_encoder):
        _db, enc = dmv_encoder
        gen = PoisonQueryGenerator(enc, seed=0)
        batch = gen.generate(5, np.random.default_rng(5))
        np.testing.assert_array_equal(batch.join_binary, np.ones((5, 1)))
        assert batch.resamples == 0

    def test_encodings_differentiable_wrt_generator(self, dmv_encoder):
        _db, enc = dmv_encoder
        gen = PoisonQueryGenerator(enc, seed=0)
        batch = gen.generate(4, np.random.default_rng(6))
        loss = (batch.encodings * batch.encodings).sum()
        loss.backward()
        bound_params = list(gen.g_low.parameters()) + list(gen.g_rng.parameters())
        assert any(
            p.grad is not None and np.abs(p.grad.data).sum() > 0 for p in bound_params
        )

    def test_initial_queries_mostly_satisfiable(self, dmv_encoder):
        """The wide-init contract: a cold generator emits runnable queries."""
        db, enc = dmv_encoder
        from repro.db import Executor

        ex = Executor(db)
        gen = PoisonQueryGenerator(enc, seed=0)
        queries = gen.generate_queries(20, np.random.default_rng(7))
        cards = ex.count_many(queries)
        assert (cards > 0).mean() >= 0.8

    def test_zero_batch_rejected(self, dmv_encoder):
        _db, enc = dmv_encoder
        gen = PoisonQueryGenerator(enc, seed=0)
        with pytest.raises(QueryError):
            gen.generate(0, np.random.default_rng(0))

    def test_deterministic_given_seeds(self, imdb_encoder):
        _db, enc = imdb_encoder
        a = PoisonQueryGenerator(enc, seed=3).generate(5, np.random.default_rng(9))
        b = PoisonQueryGenerator(enc, seed=3).generate(5, np.random.default_rng(9))
        np.testing.assert_array_equal(a.encodings.data, b.encodings.data)
