"""Retargeting G_join away from oversized (un-executable) join patterns."""

import numpy as np
import pytest

from repro.attack.algorithms import _shrink_join_pattern
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def tpch_schema():
    return load_dataset("tpch", scale="smoke", seed=0).schema


def pattern_for(schema, tables):
    pattern = np.zeros(schema.num_tables)
    for t in tables:
        pattern[schema.table_index(t)] = 1.0
    return pattern


class TestShrinkJoinPattern:
    def test_removes_lowest_scored_leaf(self, tpch_schema):
        tables = ["customer", "orders", "lineitem"]
        pattern = pattern_for(tpch_schema, tables)
        scores = np.zeros(tpch_schema.num_tables)
        scores[tpch_schema.table_index("customer")] = 0.6
        scores[tpch_schema.table_index("orders")] = 0.9
        scores[tpch_schema.table_index("lineitem")] = 0.7
        shrunk = _shrink_join_pattern(tpch_schema, pattern, scores)
        # orders is the articulation point; customer has the lowest score
        # among removable leaves.
        assert shrunk[tpch_schema.table_index("customer")] == 0.0
        assert shrunk.sum() == 2.0

    def test_result_stays_connected(self, tpch_schema):
        rng = np.random.default_rng(0)
        tables = ["region", "nation", "supplier", "partsupp", "part"]
        pattern = pattern_for(tpch_schema, tables)
        shrunk = _shrink_join_pattern(tpch_schema, pattern, rng.uniform(size=len(pattern)))
        remaining = {
            tpch_schema.table_names[i] for i in np.nonzero(shrunk > 0.5)[0]
        }
        assert tpch_schema.is_valid_join_set(remaining)
        assert len(remaining) == len(tables) - 1

    def test_two_table_pattern_unchanged(self, tpch_schema):
        pattern = pattern_for(tpch_schema, ["customer", "orders"])
        shrunk = _shrink_join_pattern(tpch_schema, pattern, np.ones(tpch_schema.num_tables))
        np.testing.assert_array_equal(shrunk, pattern)


class TestGenerateUsable:
    def test_usable_queries_are_labeled_and_nonempty(self):
        from repro.attack import PoisonQueryGenerator
        from repro.db import Executor
        from repro.workload import QueryEncoder

        db = load_dataset("tpch", scale="smoke", seed=0)
        executor = Executor(db)
        generator = PoisonQueryGenerator(QueryEncoder(db.schema), seed=0)
        queries = generator.generate_usable_queries(
            10, np.random.default_rng(0), executor
        )
        assert len(queries) == 10
        counts = [executor.try_count(q) for q in queries]
        usable = [c is not None and c > 0 for c in counts]
        assert np.mean(usable) >= 0.8
