"""Parallel experiment grid: ordering and serial/parallel determinism."""

import numpy as np

from repro.harness import GridJob, run_grid

#: A seed no other test's scenario cache uses, so the serial arm of the
#: determinism comparison builds its scenario (and acquires its surrogate)
#: through exactly the same code path as the fresh worker processes.
_GRID_SEED = 11


def _comparable(outcome):
    """Everything except the wall-clock fields, which measure real time."""
    return (
        outcome.method,
        outcome.before.tobytes(),
        outcome.after.tobytes(),
        outcome.poison_queries,
        outcome.divergence,
        tuple(outcome.objective_curve),
    )


class TestRunGrid:
    def test_results_follow_job_order(self):
        jobs = [
            GridJob("dmv", "fcn", "random", seed=_GRID_SEED),
            GridJob("dmv", "fcn", "clean", seed=_GRID_SEED),
        ]
        outcomes = run_grid(jobs, deterministic_timing=True)
        assert [o.method for o in outcomes] == ["random", "clean"]
        assert outcomes[1].poison_queries == []

    def test_parallel_grid_matches_serial_bitwise(self):
        """Worker processes must reproduce the serial outcomes exactly.

        Every random decision derives from the job seed and (with a pinned
        clock) no measured latency leaks into any decision, so the only
        admissible differences are the wall-clock timing fields.
        """
        jobs = [
            GridJob("dmv", "fcn", "random", seed=_GRID_SEED),
            GridJob("dmv", "fcn", "pace", seed=_GRID_SEED),
        ]
        serial = run_grid(jobs, deterministic_timing=True)
        # spawn, not fork: forked workers would inherit this process's
        # scenario cache (populated by the serial arm just above) and the
        # comparison would never exercise an independent recomputation.
        parallel = run_grid(
            jobs, workers=2, deterministic_timing=True, start_method="spawn"
        )
        assert len(serial) == len(parallel) == len(jobs)
        for ours, theirs in zip(serial, parallel):
            assert _comparable(ours) == _comparable(theirs)
        # The attack actually did something, in both arms identically.
        pace_serial, pace_parallel = serial[1], parallel[1]
        assert len(pace_serial.poison_queries) > 0
        assert np.array_equal(pace_serial.after, pace_parallel.after)
