"""The four baseline attack methods."""

import numpy as np

from repro.attack import (
    greedy_search,
    loss_based_selection,
    random_poison,
    train_generator_loss_based,
)
from repro.attack.baselines import _inference_losses
from repro.attack import GeneratorTrainConfig, PoisonQueryGenerator


class TestRandom:
    def test_counts_and_validity(self, dmv_scenario):
        scenario = dmv_scenario
        queries = random_poison(scenario.database, scenario.executor, 10, seed=0)
        assert len(queries) == 10
        cards = scenario.executor.count_many(queries)
        assert np.all(cards > 0)


class TestLossBasedSelection:
    def test_selects_high_loss_queries(self, dmv_scenario, dmv_surrogate):
        scenario = dmv_scenario
        selected = loss_based_selection(
            scenario.database, scenario.executor, dmv_surrogate, 10,
            seed=0, pool_factor=5,
        )
        assert len(selected) == 10
        sel_cards = scenario.executor.count_many(selected)
        sel_losses = _inference_losses(dmv_surrogate, selected, sel_cards)
        pool = random_poison(scenario.database, scenario.executor, 50, seed=123)
        pool_cards = scenario.executor.count_many(pool)
        pool_losses = _inference_losses(dmv_surrogate, pool, pool_cards)
        assert sel_losses.mean() > pool_losses.mean()


class TestGreedy:
    def test_produces_valid_satisfiable_queries(self, dmv_scenario, dmv_surrogate):
        scenario = dmv_scenario
        queries = greedy_search(
            scenario.database, scenario.executor, dmv_surrogate, 5,
            seed=0, candidates_per_attribute=4,
        )
        assert len(queries) == 5
        cards = scenario.executor.count_many(queries)
        assert np.all(cards > 0)

    def test_greedy_beats_random_on_inference_loss(self, dmv_scenario, dmv_surrogate):
        scenario = dmv_scenario
        greedy = greedy_search(
            scenario.database, scenario.executor, dmv_surrogate, 5,
            seed=0, candidates_per_attribute=4,
        )
        rand = random_poison(scenario.database, scenario.executor, 5, seed=0)
        g_losses = _inference_losses(
            dmv_surrogate, greedy, scenario.executor.count_many(greedy)
        )
        r_losses = _inference_losses(
            dmv_surrogate, rand, scenario.executor.count_many(rand)
        )
        assert g_losses.mean() > r_losses.mean()


class TestLossBasedGeneration:
    def test_trains_and_generates(self, dmv_scenario, dmv_surrogate):
        scenario = dmv_scenario
        gen = PoisonQueryGenerator(scenario.encoder, seed=0)
        config = GeneratorTrainConfig(
            poison_batch=12, update_steps=3, iterations=8, seed=0
        )
        result = train_generator_loss_based(
            gen, dmv_surrogate, scenario.executor, scenario.test_workload, config
        )
        assert len(result.objective_curve) == 8
        queries = gen.generate_queries(12, np.random.default_rng(0))
        assert len(queries) == 12
