"""The full PACE pipeline and its configuration surface."""

import numpy as np
import pytest

from repro.attack import GeneratorTrainConfig, PaceAttack, PaceConfig
from repro.ce import evaluate_q_errors
from repro.utils.errors import TrainingError


def quick_config(seed=0, **overrides):
    config = PaceConfig(
        poison_queries=16,
        attacker_queries=60,
        probe_queries_per_group=4,
        generator=GeneratorTrainConfig(
            poison_batch=16, update_steps=3, iterations=10, seed=seed
        ),
        seed=seed,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


class TestPipeline:
    def test_prepare_produces_all_artifacts(self, dmv_scenario):
        scenario = dmv_scenario
        scenario.reset()
        attack = PaceAttack(
            scenario.database, scenario.deployed, scenario.test_workload,
            quick_config(),
        )
        result = attack.prepare()
        assert result.speculation is not None
        assert result.surrogate is not None
        assert result.detector is not None
        assert len(result.poison_queries) == 16
        assert result.train_seconds > 0
        assert result.generate_seconds >= 0
        scenario.reset()

    def test_attack_updates_model_and_times_it(self, dmv_scenario):
        scenario = dmv_scenario
        scenario.reset()
        before = evaluate_q_errors(scenario.model, scenario.test_workload).mean()
        attack = PaceAttack(
            scenario.database, scenario.deployed, scenario.test_workload,
            quick_config(),
        )
        result = attack.attack()
        assert result.execution is not None
        assert result.attack_seconds >= 0
        after = evaluate_q_errors(scenario.model, scenario.test_workload).mean()
        assert after != pytest.approx(before)
        scenario.reset()

    def test_forced_model_type_skips_speculation(self, dmv_scenario):
        scenario = dmv_scenario
        scenario.reset()
        attack = PaceAttack(
            scenario.database, scenario.deployed, scenario.test_workload,
            quick_config(speculate=False, forced_model_type="mscn"),
        )
        result = attack.prepare()
        assert result.speculation is None
        assert result.surrogate.model_type == "mscn"
        scenario.reset()

    def test_forced_type_required_when_not_speculating(self, dmv_scenario):
        scenario = dmv_scenario
        attack = PaceAttack(
            scenario.database, scenario.deployed, scenario.test_workload,
            quick_config(speculate=False),
        )
        with pytest.raises(TrainingError):
            attack.prepare()

    def test_detector_disabled(self, dmv_scenario):
        scenario = dmv_scenario
        scenario.reset()
        attack = PaceAttack(
            scenario.database, scenario.deployed, scenario.test_workload,
            quick_config(use_detector=False),
        )
        result = attack.prepare()
        assert result.detector is None
        scenario.reset()

    def test_unknown_algorithm_rejected(self, dmv_scenario):
        scenario = dmv_scenario
        attack = PaceAttack(
            scenario.database, scenario.deployed, scenario.test_workload,
            quick_config(algorithm="quantum"),
        )
        with pytest.raises(TrainingError):
            attack.prepare()

    def test_detector_threshold_override(self, dmv_scenario):
        scenario = dmv_scenario
        scenario.reset()
        attack = PaceAttack(
            scenario.database, scenario.deployed, scenario.test_workload,
            quick_config(detector_threshold=0.09),
        )
        result = attack.prepare()
        assert result.detector.threshold == pytest.approx(0.09)
        scenario.reset()

    def test_timings_scale_with_query_count(self, dmv_scenario):
        """Table 10's shape: generation time grows with the query count,
        training time does not."""
        scenario = dmv_scenario
        scenario.reset()
        attack = PaceAttack(
            scenario.database, scenario.deployed, scenario.test_workload,
            quick_config(),
        )
        result = attack.prepare()
        rng = np.random.default_rng(0)
        import time

        start = time.perf_counter()
        result.generator.generate_queries(8, rng)
        t_small = time.perf_counter() - start
        start = time.perf_counter()
        result.generator.generate_queries(64, rng)
        t_large = time.perf_counter() - start
        assert t_large > t_small * 0.5  # generation cost scales up, roughly
        scenario.reset()
