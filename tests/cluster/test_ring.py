"""Property tests for the consistent-hash ring (PR 9 satellite).

The three properties the router leans on: positions are
process-independent (SHA-256, not salted ``hash``), removing one of N
nodes remaps only that node's span (≈ K/N of K keys, survivors
untouched), and re-adding the node restores the exact prior mapping
(affinity stability across a leave/rejoin cycle).
"""

import hashlib

import pytest

from repro.cluster.ring import HashRing, ring_position, shard_key
from repro.utils.errors import ReproError

KEYS = [f"tenant-{i % 13:02d}|t{i % 7}+t{i % 11}" for i in range(1000)]
NODES = [f"worker-{i}" for i in range(8)]


class TestPositions:
    def test_ring_position_is_sha256_prefix(self):
        label = "worker-3#17"
        digest = hashlib.sha256(label.encode("utf-8")).digest()
        assert ring_position(label) == int.from_bytes(digest[:8], "big")

    def test_positions_are_deterministic_across_instances(self):
        # Two rings built in different insertion orders agree everywhere:
        # the mapping is a pure function of the membership set.
        forward = HashRing(NODES, vnodes=32)
        backward = HashRing(reversed(NODES), vnodes=32)
        assert forward.mapping_of(KEYS) == backward.mapping_of(KEYS)

    def test_shard_key_canonicalizes_table_order(self):
        assert shard_key("t", ["b", "a"]) == shard_key("t", ["a", "b"])
        assert shard_key("t", ["a", "b"]) == "t|a+b"


class TestChurn:
    def test_remove_one_of_n_remaps_only_its_span(self):
        ring = HashRing(NODES, vnodes=64)
        before = ring.mapping_of(KEYS)
        victim = NODES[3]
        ring.remove(victim)
        after = ring.mapping_of(KEYS)
        moved = [k for k in KEYS if before[k] != after[k]]
        # Every moved key was the victim's; no survivor-to-survivor churn.
        assert all(before[k] == victim for k in moved)
        assert all(after[k] != victim for k in KEYS)
        # ≈ K/N keys move; allow 2x headroom over the 1/8 expectation.
        assert len(moved) == sum(1 for k in KEYS if before[k] == victim)
        assert len(moved) / len(KEYS) < 0.25

    def test_rejoin_restores_the_exact_prior_mapping(self):
        ring = HashRing(NODES, vnodes=64)
        before = ring.mapping_of(KEYS)
        ring.remove(NODES[5])
        ring.add(NODES[5])
        assert ring.mapping_of(KEYS) == before

    def test_spans_sum_to_one(self):
        ring = HashRing(NODES, vnodes=64)
        spans = ring.spans()
        assert set(spans) == set(NODES)
        assert sum(spans.values()) == pytest.approx(1.0)
        ring.remove(NODES[0])
        assert sum(ring.spans().values()) == pytest.approx(1.0)


class TestMembership:
    def test_duplicate_add_raises(self):
        ring = HashRing(["a"])
        with pytest.raises(ReproError, match="already on the ring"):
            ring.add("a")

    def test_unknown_remove_raises(self):
        ring = HashRing(["a"])
        with pytest.raises(ReproError, match="not on the ring"):
            ring.remove("b")

    def test_empty_ring_lookup_raises(self):
        with pytest.raises(ReproError, match="no nodes"):
            HashRing().node_for("key")

    def test_contains_and_len(self):
        ring = HashRing(["a", "b"])
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        assert ring.nodes == ("a", "b")
