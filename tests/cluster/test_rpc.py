"""Framed RPC: framing validation, inline endpoint, channel semantics."""

import struct

import pytest

from repro.cluster.rpc import (
    MAGIC,
    MAX_BODY_BYTES,
    EndpointClosed,
    InlineEndpoint,
    RpcChannel,
    RpcError,
    RpcTimeout,
    decode_frame,
    encode_frame,
)
from repro.store.faults import CrashPoint

_HEADER = struct.Struct(">4sBII")


class TestFraming:
    def test_roundtrip(self):
        payload = {"requests": [["tenant-a", [["t1"], []], None]], "now": 1.5}
        frame = encode_frame("estimate", 7, payload)
        assert decode_frame(frame) == ("estimate", 7, payload)

    def test_corrupted_body_fails_crc(self):
        frame = bytearray(encode_frame("ping", 1, {"now": 0.0}))
        frame[-1] ^= 0xFF
        with pytest.raises(RpcError, match="CRC mismatch"):
            decode_frame(bytes(frame))

    def test_short_frame(self):
        with pytest.raises(RpcError, match="short frame"):
            decode_frame(b"PR")

    def test_bad_magic(self):
        frame = b"XXXX" + encode_frame("ping", 1, {})[4:]
        with pytest.raises(RpcError, match="bad frame magic"):
            decode_frame(frame)

    def test_bad_version(self):
        body = b"{}"
        frame = _HEADER.pack(MAGIC, 99, 0, len(body)) + body
        with pytest.raises(RpcError, match="unsupported frame version"):
            decode_frame(frame)

    def test_oversize_length_rejected_without_allocating(self):
        frame = _HEADER.pack(MAGIC, 1, 0, MAX_BODY_BYTES + 1)
        with pytest.raises(RpcError, match="exceeds cap"):
            decode_frame(frame)

    def test_torn_frame(self):
        frame = encode_frame("ping", 1, {"now": 0.0})
        with pytest.raises(RpcError, match="torn frame"):
            decode_frame(frame[:-3])


class TestInlineEndpoint:
    def test_echo_handler(self):
        endpoint = InlineEndpoint(lambda data: [data])
        frame = encode_frame("ping", 1, {"now": 2.0})
        endpoint.send(frame)
        assert endpoint.poll()
        assert endpoint.recv() == frame
        assert not endpoint.poll()

    def test_crash_closes_permanently(self):
        def dying(data):
            raise CrashPoint("site", 1)

        endpoint = InlineEndpoint(dying)
        with pytest.raises(EndpointClosed, match="crashed"):
            endpoint.send(b"x")
        assert endpoint.closed
        with pytest.raises(EndpointClosed):
            endpoint.send(b"x")
        with pytest.raises(EndpointClosed):
            endpoint.recv()

    def test_recv_with_no_reply_times_out(self):
        endpoint = InlineEndpoint(lambda data: [])
        endpoint.send(encode_frame("ping", 1, {}))
        with pytest.raises(RpcTimeout):
            endpoint.recv()


class TestChannel:
    def test_stale_reply_discarded(self):
        # The handler answers every request twice: once with a stale
        # sequence number (a timed-out earlier attempt's reply arriving
        # late) and once fresh; the channel must deliver only the fresh.
        def handler(data):
            kind, seq, _payload = decode_frame(data)
            return [
                encode_frame(kind, seq - 1, "stale"),
                encode_frame(kind, seq, "fresh"),
            ]

        channel = RpcChannel(InlineEndpoint(handler))
        assert channel.call("ping", {}) == "fresh"

    def test_out_of_order_future_reply_is_an_error(self):
        def handler(data):
            kind, seq, _payload = decode_frame(data)
            return [encode_frame(kind, seq + 5, "future")]

        channel = RpcChannel(InlineEndpoint(handler))
        with pytest.raises(RpcError, match="out-of-order reply"):
            channel.call("ping", {}, retries=0)

    def test_error_frame_raises(self):
        def handler(data):
            _kind, seq, _payload = decode_frame(data)
            return [encode_frame("error", seq, "ValueError: boom")]

        channel = RpcChannel(InlineEndpoint(handler))
        with pytest.raises(RpcError, match="worker error: ValueError: boom"):
            channel.call("ping", {})

    def test_retry_recovers_a_dropped_reply(self):
        calls = {"n": 0}

        def flaky(data):
            kind, seq, _payload = decode_frame(data)
            calls["n"] += 1
            if calls["n"] == 1:
                return []  # drop the first reply on the floor
            return [encode_frame(kind, seq, "ok")]

        channel = RpcChannel(InlineEndpoint(flaky), retries=1)
        assert channel.call("ping", {}) == "ok"
        assert calls["n"] == 2

    def test_retries_exhausted(self):
        channel = RpcChannel(InlineEndpoint(lambda data: []), retries=2)
        with pytest.raises(RpcTimeout, match="after 3 attempt"):
            channel.call("ping", {})
