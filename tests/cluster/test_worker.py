"""ShardWorker: frame handlers, caching, warm restart, fault drills."""

import pytest

from repro.cluster.rpc import EndpointClosed, InlineEndpoint, decode_frame, encode_frame
from repro.cluster.worker import ShardWorker, serialize_query
from repro.serve.server import DONE, SHED
from tests.cluster.conftest import make_specs


def estimate_payload(queries, tenant="tenant-a", now=0.0, deadline=None):
    return {
        "now": now,
        "requests": [[tenant, serialize_query(q), deadline] for q in queries],
    }


@pytest.fixture()
def worker(cluster_world):
    return ShardWorker(make_specs(cluster_world, 1)[0])


class TestFrames:
    def test_ping_syncs_clock(self, worker):
        reply = worker.handle("ping", {"now": 42.5})
        assert reply == {"worker_id": 0, "now": 42.5}
        assert worker.clock() == 42.5

    def test_estimate_miss_then_hit(self, worker, cluster_world):
        query = cluster_world.queries[0]
        first = worker.handle("estimate", estimate_payload([query]))
        value, status, from_cache = first["results"][0]
        assert status == DONE and not from_cache and value > 0.0
        second = worker.handle("estimate", estimate_payload([query]))
        assert second["results"][0] == [value, DONE, True]
        assert worker.telemetry.cache_hits == 1
        assert worker.telemetry.cache_misses == 1

    def test_estimate_sheds_past_deadline(self, worker, cluster_world):
        payload = estimate_payload([cluster_world.queries[0]], now=5.0, deadline=4.0)
        reply = worker.handle("estimate", payload)
        assert reply["results"][0] == [None, SHED, False]
        assert worker.telemetry.shed == 1

    def test_batched_estimate_matches_solo_estimate_bitwise(
        self, worker, cluster_world
    ):
        # The kill-drill digest rests on this: a value computed alongside
        # batch peers must equal the same query's value computed alone,
        # so the per-miss forward is single-row by construction.
        batch = worker.handle(
            "estimate", estimate_payload(cluster_world.queries[:8])
        )
        solo = ShardWorker(make_specs(cluster_world, 1)[0]).handle(
            "estimate", estimate_payload([cluster_world.queries[3]])
        )
        assert batch["results"][3][0] == solo["results"][0][0]

    def test_unknown_kind_becomes_error_frame(self, worker):
        replies = worker.handle_bytes(encode_frame("mystery", 9, {}))
        kind, seq, payload = decode_frame(replies[0])
        assert kind == "error" and seq == 9
        assert "unknown frame kind" in payload


class TestWarmRestart:
    def test_restart_reseats_replicas_and_invalidates_caches(
        self, worker, cluster_world
    ):
        query = cluster_world.queries[0]
        before = worker.handle("estimate", estimate_payload([query]))
        reply = worker.handle("warm_restart", {"digest": cluster_world.promoted})
        assert reply == {"worker_id": 0, "digest": cluster_world.promoted, "replicas": 1}
        assert worker.telemetry.restarts == 1
        after = worker.handle("estimate", estimate_payload([query]))
        # New parameters, cold cache: a recomputed (different) estimate.
        assert not after["results"][0][2]
        assert after["results"][0][0] != before["results"][0][0]

    def test_same_digest_restart_is_a_cache_flush_only(self, worker, cluster_world):
        query = cluster_world.queries[0]
        worker.handle("estimate", estimate_payload([query]))
        worker.handle("warm_restart", {"digest": cluster_world.digest})
        assert worker.telemetry.restarts == 0
        reply = worker.handle("estimate", estimate_payload([query]))
        assert not reply["results"][0][2]  # cache was still invalidated


class TestFaults:
    def test_drill_fault_crashes_the_estimate_frame(self, cluster_world):
        from repro.cluster.worker import ESTIMATE_SITE

        site = ESTIMATE_SITE.format(worker_id=0)
        spec = make_specs(cluster_world, 1, faults={0: ((site, "crash", 2),)})[0]
        worker = ShardWorker(spec)
        endpoint = InlineEndpoint(worker.handle_bytes)
        payload = estimate_payload([cluster_world.queries[0]])
        endpoint.send(encode_frame("estimate", 1, payload))
        endpoint.recv()  # ordinal 1: survives
        with pytest.raises(EndpointClosed, match="crashed"):
            endpoint.send(encode_frame("estimate", 2, payload))
        assert endpoint.closed
