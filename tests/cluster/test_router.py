"""ClusterRouter: ring dispatch, backpressure, recovery in both modes."""

import pytest

from repro.cluster.router import ClusterError, ClusterRouter, node_label
from repro.serve.server import DONE, REJECTED, SHED
from repro.utils.clock import ManualClock
from tests.cluster.conftest import TENANTS, make_specs


def make_router(world, n=2, **kwargs):
    kwargs.setdefault("clock", ManualClock(domain="router"))
    router = ClusterRouter(make_specs(world, n), transport="inline", **kwargs)
    router.start()
    return router


class TestDispatch:
    def test_requests_route_per_ring_and_complete(self, cluster_world):
        router = make_router(cluster_world, n=3)
        try:
            submitted = [
                router.submit(TENANTS[i % len(TENANTS)], query)
                for i, query in enumerate(cluster_world.queries[:12])
            ]
            for request in submitted:
                assert request.worker_id == router.worker_for(
                    request.tenant, request.query
                )
            assert router.pending() == 12
            done = router.dispatch(1.0)
            assert router.pending() == 0
            assert len(done) == 12
            assert all(r.status == DONE and r.estimate > 0.0 for r in done)
            assert {r.worker_id for r in done} <= set(router.worker_ids)
        finally:
            router.shutdown()

    def test_bounded_queue_rejects(self, cluster_world):
        router = make_router(cluster_world, n=1, max_queue=1)
        try:
            query = cluster_world.queries[0]
            first = router.submit(TENANTS[0], query)
            second = router.submit(TENANTS[0], query)
            assert first.status != REJECTED
            assert second.status == REJECTED and second.completed_at is not None
            assert router.stats.snapshot()["rejected"] == 1
        finally:
            router.shutdown()

    def test_expired_requests_are_shed_by_the_worker(self, cluster_world):
        clock = ManualClock(domain="router")
        router = make_router(cluster_world, n=1, clock=clock)
        try:
            request = router.submit(TENANTS[0], cluster_world.queries[0], timeout=1.0)
            clock.set(5.0)
            (served,) = router.dispatch(5.0)
            assert served is request
            assert served.status == SHED and served.estimate is None
        finally:
            router.shutdown()


class TestRecovery:
    def test_respawn_retries_the_batch_on_promoted_lineage(self, cluster_world):
        router = make_router(
            cluster_world, n=2, lineage_digest=lambda: cluster_world.promoted
        )
        try:
            submitted = [
                router.submit(TENANTS[i % len(TENANTS)], query)
                for i, query in enumerate(cluster_world.queries[:8])
            ]
            victim = submitted[0].worker_id
            router.kill_worker(victim)
            done = router.dispatch(1.0)
            assert len(done) == len(submitted)
            assert all(r.status == DONE for r in done)
            assert router.respawns == 1
            # The replacement warm-restarted off the lineage digest, not
            # its birth checkpoint — that is one restart in telemetry.
            assert router.worker_stats()[victim]["restarts"] == 1
        finally:
            router.shutdown()

    def test_reroute_mode_rekeys_the_dead_workers_spans(self, cluster_world):
        router = make_router(cluster_world, n=2, respawn=False)
        try:
            submitted = [
                router.submit(TENANTS[i % len(TENANTS)], query)
                for i, query in enumerate(cluster_world.queries[:8])
            ]
            victim = submitted[0].worker_id
            router.kill_worker(victim)
            first_wave = router.dispatch(1.0)
            # The victim's batch went back through the ring, not to /dev/null.
            while router.pending():
                first_wave += router.dispatch(2.0)
            assert router.reroutes == 1
            assert node_label(victim) not in router.ring
            assert victim not in router.worker_ids
            assert len(first_wave) == len(submitted)
            assert all(r.status == DONE for r in first_wave)
            assert all(r.worker_id != victim for r in first_wave)
        finally:
            router.shutdown()

    def test_heartbeat_detects_and_heals(self, cluster_world):
        router = make_router(cluster_world, n=2)
        try:
            router.kill_worker(1)
            health = router.heartbeat(1.0)
            assert health == {0: True, 1: False}
            assert router.respawns == 1
            assert router.heartbeat(2.0) == {0: True, 1: True}
        finally:
            router.shutdown()


class TestValidation:
    def test_empty_specs_rejected(self):
        with pytest.raises(ClusterError, match="at least one worker"):
            ClusterRouter([])

    def test_duplicate_worker_ids_rejected(self, cluster_world):
        spec = make_specs(cluster_world, 1)[0]
        with pytest.raises(ClusterError, match="unique"):
            ClusterRouter([spec, spec])

    def test_kill_unknown_worker_rejected(self, cluster_world):
        router = make_router(cluster_world, n=1)
        try:
            with pytest.raises(ClusterError, match="unknown worker"):
                router.kill_worker(7)
        finally:
            router.shutdown()
