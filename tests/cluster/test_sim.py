"""cluster-sim sessions: traffic determinism, digest stability, drills."""

import dataclasses

import pytest

from repro.cluster.sim import (
    ClusterSimConfig,
    ClusterTraffic,
    _build_world,
    run_cluster_drill,
    run_cluster_sim,
    run_session,
    scenario_digest,
)
from repro.store.store import ArtifactStore
from repro.utils.errors import ReproError

#: A small clean-traffic scenario shared by the session tests.
CLEAN = ClusterSimConfig(
    workers=2,
    tenants=3,
    rounds=1,
    requests_per_round=16,
    poison_fraction=0.0,
    attack_method="clean",
)


@pytest.fixture(scope="module")
def clean_world():
    return _build_world(CLEAN)


class TestTraffic:
    # The arrival process only *selects* from the pools, so sentinel
    # strings stand in for queries here.
    def test_empty_benign_pool_rejected(self):
        with pytest.raises(ReproError, match="non-empty benign pool"):
            ClusterTraffic([], [], ["t"], qps=1.0, poison_fraction=0.0, seed=0)

    def test_no_tenants_rejected(self):
        with pytest.raises(ReproError, match="at least one tenant"):
            ClusterTraffic(["q"], [], [], qps=1.0, poison_fraction=0.0, seed=0)

    def test_poison_without_pool_rejected(self):
        with pytest.raises(ReproError, match="non-empty poison pool"):
            ClusterTraffic(["q"], [], ["t"], qps=1.0, poison_fraction=0.5, seed=0)

    def test_arrivals_are_seeded_and_monotonic(self):
        def build():
            return ClusterTraffic(
                ["a", "b"], ["p"], ["t0", "t1"],
                qps=100.0, poison_fraction=0.5, seed=3,
            )

        first, second = build().arrivals(50), build().arrivals(50)
        assert first == second
        times = [a.at for a in first]
        assert times == sorted(times) and times[0] > 0.0
        assert {a.client for a in first} == {"benign", "attacker"}
        assert all(a.query == "p" for a in first if a.client == "attacker")

    def test_successive_calls_continue_the_stream(self):
        traffic = ClusterTraffic(
            ["a"], [], ["t"], qps=100.0, poison_fraction=0.0, seed=3
        )
        head = traffic.arrivals(5)
        tail = traffic.arrivals(5, start=head[-1].at)
        assert tail[0].at > head[-1].at


class TestScenarioDigest:
    def test_key_order_invariant(self):
        assert scenario_digest({"a": 1, "b": [2.5]}) == scenario_digest(
            {"b": [2.5], "a": 1}
        )
        assert scenario_digest({"a": 1}) != scenario_digest({"a": 2})


class TestSession:
    def test_digest_is_independent_of_store_location(self, clean_world, tmp_path):
        scenario, poison, validation, evaluation = clean_world
        arms = [
            run_session(
                scenario, poison, validation, evaluation, CLEAN,
                ArtifactStore(tmp_path / name), guarded=False, run_id="probe",
            )
            for name in ("a", "b")
        ]
        assert arms[0]["digest"] == arms[1]["digest"]
        assert arms[0]["respawns"] == 0
        snapshot = arms[0]["stats"]
        total = snapshot["completed"] + snapshot["shed"] + snapshot["rejected"]
        assert total == CLEAN.rounds * CLEAN.requests_per_round

    def test_guarded_arm_digests_differently_and_reports_guard(
        self, clean_world, tmp_path
    ):
        scenario, poison, validation, evaluation = clean_world
        unguarded = run_session(
            scenario, poison, validation, evaluation, CLEAN,
            ArtifactStore(tmp_path / "u"), guarded=False, run_id="probe",
        )
        guarded = run_session(
            scenario, poison, validation, evaluation, CLEAN,
            ArtifactStore(tmp_path / "g"), guarded=True, run_id="probe",
        )
        assert guarded["digest"] != unguarded["digest"]
        assert "guard" in guarded and "guard" not in unguarded


class TestSimReport:
    def test_report_shape(self, tmp_path):
        config = dataclasses.replace(CLEAN, store_root=str(tmp_path / "store"))
        report = run_cluster_sim(config)
        assert report["tool"] == "pace-repro cluster-sim"
        assert set(report["arms"]) == {"unguarded", "guarded"}
        for arm in report["arms"].values():
            assert len(arm["digest"]) == 64
            assert arm["rounds"][0]["arrivals"] == config.requests_per_round
        effect = report["guard_effect"]
        assert effect["guard_wins"] in (True, False)


class TestDrill:
    def test_drill_round_bounds_validated(self):
        with pytest.raises(ReproError, match=r"drill_round must be in \[1, 2\]"):
            run_cluster_drill(dataclasses.replace(CLEAN, rounds=2, drill_round=3))

    def test_kill_drill_digest_is_byte_identical(self, tmp_path):
        config = ClusterSimConfig(
            workers=2,
            tenants=4,
            rounds=2,
            requests_per_round=24,
            poison_fraction=0.0,
            attack_method="clean",
            store_root=str(tmp_path / "store"),
            drill_worker=0,
            drill_round=2,
        )
        report = run_cluster_drill(config)
        assert report["drill"]["fired"]
        assert report["drilled"]["respawns"] == 1
        assert report["reference"]["respawns"] == 0
        # The kill lands after round 1's promotion, so the replacement
        # warm-restarted from replicated lineage — and the trace held.
        assert len(report["reference"]["promotions"]) >= 1
        assert report["identical"]
        assert report["reference"]["digest"] == report["drilled"]["digest"]
