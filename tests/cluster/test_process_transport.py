"""The process transport is bitwise-equivalent to the inline one.

Kept to two tests — each spawns real worker processes, which pay a
dataset+model import per process — but those two carry the claim the
whole simulation rests on: the inline transport is a faithful twin.
"""

from repro.cluster.router import ClusterRouter
from repro.utils.clock import ManualClock
from tests.cluster.conftest import TENANTS, make_specs


def drive(world, transport, kill=False):
    router = ClusterRouter(
        make_specs(world, 2), transport=transport,
        clock=ManualClock(domain="router"),
    )
    router.start()
    try:
        submitted = [
            router.submit(TENANTS[i % len(TENANTS)], query)
            for i, query in enumerate(world.queries[:8])
        ]
        if kill:
            router.kill_worker(submitted[0].worker_id)
        done = router.dispatch(1.0)
        trace = [(r.tenant, r.status, r.estimate) for r in done]
        return trace, router.respawns
    finally:
        router.shutdown()


def test_process_transport_matches_inline_bitwise(cluster_world):
    inline, _ = drive(cluster_world, "inline")
    process, _ = drive(cluster_world, "process")
    assert process == inline


def test_process_worker_respawn_preserves_the_trace(cluster_world):
    inline, _ = drive(cluster_world, "inline")
    drilled, respawns = drive(cluster_world, "process", kill=True)
    assert respawns == 1
    assert drilled == inline
