"""Planned shard removal: router.quarantine and the re-route drill."""

import pytest

from repro.cluster.router import ClusterError, ClusterRouter, node_label
from repro.cluster.sim import ClusterSimConfig, run_reroute_drill
from repro.serve.server import DONE
from repro.utils.clock import ManualClock
from repro.utils.errors import ReproError
from tests.cluster.conftest import TENANTS, make_specs


def make_router(world, n=2, **kwargs):
    kwargs.setdefault("clock", ManualClock(domain="router"))
    router = ClusterRouter(make_specs(world, n), transport="inline", **kwargs)
    router.start()
    return router


class TestQuarantine:
    def test_drains_the_worker_and_rekeys_its_queue(self, cluster_world):
        router = make_router(cluster_world, n=3)
        try:
            submitted = [
                router.submit(TENANTS[i % len(TENANTS)], query)
                for i, query in enumerate(cluster_world.queries[:12])
            ]
            victim = submitted[0].worker_id
            report = router.quarantine(victim)
            assert router.quarantines == 1
            assert victim not in router.worker_ids
            assert node_label(victim) not in router.ring
            assert report["worker_id"] == victim
            assert report["acked"]
            # Nothing was lost: every request still completes on the
            # survivors.
            done = router.dispatch(1.0)
            while router.pending():
                done += router.dispatch(2.0)
            assert len(done) == len(submitted)
            assert all(r.status == DONE for r in done)
            assert all(r.worker_id != victim for r in done)
        finally:
            router.shutdown()

    def test_unknown_worker_is_refused(self, cluster_world):
        router = make_router(cluster_world, n=2)
        try:
            with pytest.raises(ClusterError, match="unknown worker"):
                router.quarantine(99)
        finally:
            router.shutdown()

    def test_the_last_worker_cannot_be_quarantined(self, cluster_world):
        router = make_router(cluster_world, n=1)
        try:
            with pytest.raises(ClusterError, match="last worker"):
                router.quarantine(0)
        finally:
            router.shutdown()


class TestRerouteDrill:
    def test_config_validation(self, tmp_path):
        with pytest.raises(ReproError, match=">= 2 workers"):
            run_reroute_drill(ClusterSimConfig(
                workers=1, store_root=str(tmp_path)
            ))
        with pytest.raises(ReproError, match="drill_round"):
            run_reroute_drill(ClusterSimConfig(
                rounds=2, drill_round=3, store_root=str(tmp_path)
            ))

    def test_degraded_mode_survives_the_kill(self, tmp_path):
        report = run_reroute_drill(ClusterSimConfig(
            workers=2,
            rounds=2,
            requests_per_round=32,
            attack_method="random",
            store_root=str(tmp_path / "cluster-store"),
        ))
        drill = report["drill"]
        assert drill["fired"], "the re-route branch never triggered"
        assert drill["all_finalized"]
        assert drill["survivors_ok"]
        assert drill["ok"]
        # Reference keeps both workers; the drilled arm lost exactly one.
        assert report["reference"]["workers_after"] == 2
        assert report["drilled"]["workers_after"] == 1
        assert report["drilled"]["reroutes"] >= 1
        assert report["reference"]["reroutes"] == 0
