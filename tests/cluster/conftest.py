"""Shared fixtures: a tiny store-backed cluster world on DMV smoke.

The world mirrors exactly what a :class:`~repro.cluster.worker.ShardWorker`
rebuilds from its spec — same dataset call, same encoder, same model
skeleton — so the checkpoint seeded here loads bitwise into every
replica a test spawns.
"""

from types import SimpleNamespace

import pytest

from repro.ce import create_model
from repro.cluster.worker import WorkerSpec
from repro.datasets import load_dataset
from repro.db import Executor
from repro.store import ArtifactStore
from repro.utils.config import get_scale
from repro.workload import QueryEncoder, WorkloadGenerator

TENANTS = ("tenant-a", "tenant-b", "tenant-c")


@pytest.fixture(scope="session")
def cluster_world(tmp_path_factory):
    """One dataset + encoder + seeded checkpoints shared by every test."""
    scale = get_scale("smoke")
    db = load_dataset("dmv", scale=scale, seed=0)
    encoder = QueryEncoder(db.schema)
    model = create_model("fcn", encoder, hidden_dim=scale.hidden_dim, seed=0)
    store = ArtifactStore(tmp_path_factory.mktemp("cluster-store"))
    digest = store.put_checkpoint(model.full_state_dict()).digest
    # A second, different checkpoint to promote replicas onto.
    other = create_model("fcn", encoder, hidden_dim=scale.hidden_dim, seed=1)
    promoted = store.put_checkpoint(other.full_state_dict()).digest
    queries = WorkloadGenerator(db, Executor(db), seed=7).generate(24).queries
    return SimpleNamespace(
        db=db,
        encoder=encoder,
        model=model,
        store=store,
        digest=digest,
        promoted=promoted,
        queries=queries,
    )


def make_specs(world, n, faults=None, tenants=TENANTS, **overrides):
    """N spawn-safe worker specs over the shared world's store."""
    faults = faults or {}
    return [
        WorkerSpec(
            worker_id=wid,
            dataset="dmv",
            model_type="fcn",
            scale="smoke",
            seed=0,
            store_root=str(world.store.root),
            initial_digest=world.digest,
            tenants=tuple(tenants),
            faults=faults.get(wid, ()),
            **overrides,
        )
        for wid in range(n)
    ]
