"""Unit tests for the bench report helpers (no scenarios are run here)."""

from repro.perf.bench import (
    attach_baseline,
    format_report,
    load_report,
    write_report,
)
from repro.perf.profile import PHASES


def _entry(dataset, model, method, total, phases=None):
    return {
        "dataset": dataset,
        "model": model,
        "method": method,
        "total_seconds": total,
        "phases": {name: 0.0 for name in PHASES} | (phases or {}),
    }


def _report(entries):
    return {
        "schema_version": 1,
        "tool": "pace-repro bench",
        "scale": "smoke",
        "seed": 0,
        "deterministic_timing": True,
        "recorded_unix": 0.0,
        "phases": list(PHASES),
        "grid": entries,
        "total_seconds": float(sum(e["total_seconds"] for e in entries)),
    }


class TestAttachBaseline:
    def test_overall_and_per_scenario_speedup(self):
        current = _report([
            _entry("dmv", "fcn", "pace", 2.0, {"train": 1.0, "attack": 1.0}),
            _entry("tpch", "fcn", "pace", 1.0, {"attack": 1.0}),
        ])
        baseline = _report([
            _entry("dmv", "fcn", "pace", 8.0, {"train": 2.0, "attack": 6.0}),
            _entry("tpch", "fcn", "pace", 4.0, {"attack": 4.0}),
        ])
        attach_baseline(current, baseline, "baselines/BENCH_SEED.json")
        section = current["baseline"]
        assert section["path"] == "baselines/BENCH_SEED.json"
        assert section["total_seconds"] == 12.0
        assert section["current_seconds"] == 3.0
        assert section["speedup"] == 4.0
        by_key = {
            (e["dataset"], e["model"]): e for e in section["per_scenario"]
        }
        assert by_key[("dmv", "fcn")]["speedup"] == 4.0
        assert by_key[("dmv", "fcn")]["phase_speedups"]["train"] == 2.0
        assert by_key[("dmv", "fcn")]["phase_speedups"]["attack"] == 6.0
        assert by_key[("tpch", "fcn")]["speedup"] == 4.0

    def test_unmatched_scenarios_are_skipped(self):
        current = _report([
            _entry("dmv", "fcn", "pace", 2.0),
            _entry("stats", "mscn", "pace", 5.0),
        ])
        baseline = _report([_entry("dmv", "fcn", "pace", 6.0)])
        attach_baseline(current, baseline, "b.json")
        section = current["baseline"]
        assert section["speedup"] == 3.0
        assert len(section["per_scenario"]) == 1

    def test_zero_current_seconds_yields_null_speedup(self):
        current = _report([_entry("dmv", "fcn", "pace", 0.0)])
        baseline = _report([_entry("dmv", "fcn", "pace", 6.0)])
        attach_baseline(current, baseline, "b.json")
        assert current["baseline"]["speedup"] is None
        assert current["baseline"]["per_scenario"][0]["speedup"] is None


class TestReportIO:
    def test_write_then_load_roundtrip(self, tmp_path):
        report = _report([_entry("dmv", "fcn", "pace", 1.5, {"train": 1.5})])
        path = write_report(report, tmp_path / "nested" / "BENCH.json")
        assert path.exists()
        assert load_report(path) == report

    def test_bare_filename_lands_under_benchmarks(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        report = _report([_entry("dmv", "fcn", "pace", 1.0)])
        path = write_report(report, "BENCH_X.json")
        assert path.resolve() == tmp_path / "benchmarks" / "BENCH_X.json"
        assert load_report(path) == report

    def test_explicit_directory_is_honored(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        report = _report([_entry("dmv", "fcn", "pace", 1.0)])
        path = write_report(report, "reports/BENCH_X.json")
        assert path.resolve() == tmp_path / "reports" / "BENCH_X.json"
        assert load_report(path) == report


class TestFormatReport:
    def test_mentions_every_scenario_and_the_speedup(self):
        report = _report([
            _entry("dmv", "fcn", "pace", 2.0, {"train": 1.0}),
            _entry("tpch", "fcn", "pace", 1.0),
        ])
        baseline = _report([
            _entry("dmv", "fcn", "pace", 8.0, {"train": 2.0}),
            _entry("tpch", "fcn", "pace", 4.0),
        ])
        attach_baseline(report, baseline, "b.json")
        text = format_report(report)
        assert "dmv/fcn" in text
        assert "tpch/fcn" in text
        assert "4.00x" in text

    def test_no_baseline_section_without_baseline(self):
        text = format_report(_report([_entry("dmv", "fcn", "pace", 2.0)]))
        assert "dmv/fcn" in text
        assert "speedup" not in text
