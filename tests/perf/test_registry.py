"""Unit tests for the PERF registry: overhead contract and bookkeeping."""

import time

from repro.perf.registry import _NULL_SPAN, PerfRegistry


class TestDisabledRegistry:
    def test_disabled_span_is_the_shared_null_span(self):
        registry = PerfRegistry()
        assert registry.span("anything") is _NULL_SPAN
        assert registry.span("other") is _NULL_SPAN

    def test_null_span_records_nothing(self):
        registry = PerfRegistry()
        with registry.span("phase.train"):
            pass
        assert registry.spans == {}
        assert registry.span_counts == {}

    def test_disabled_incr_is_a_no_op(self):
        registry = PerfRegistry()
        registry.incr("db.cache_hits")
        registry.incr("db.cache_hits", 5)
        assert registry.counters == {}


class TestEnabledRegistry:
    def test_spans_accumulate_seconds_and_counts(self):
        registry = PerfRegistry(enabled=True)
        for _ in range(3):
            with registry.span("phase.encode"):
                time.sleep(0.001)
        assert registry.span_counts["phase.encode"] == 3
        assert registry.spans["phase.encode"] >= 0.003

    def test_counters_accumulate(self):
        registry = PerfRegistry(enabled=True)
        registry.incr("ops")
        registry.incr("ops", 4)
        registry.incr("other")
        assert registry.counters == {"ops": 5, "other": 1}

    def test_reset_clears_everything_but_keeps_enabled(self):
        registry = PerfRegistry(enabled=True)
        with registry.span("a"):
            pass
        registry.incr("b")
        registry.reset()
        assert registry.spans == {}
        assert registry.span_counts == {}
        assert registry.counters == {}
        assert registry.enabled

    def test_enable_disable_toggle(self):
        registry = PerfRegistry()
        registry.enable()
        assert registry.enabled
        registry.disable()
        assert not registry.enabled
        assert registry.span("x") is _NULL_SPAN

    def test_snapshot_is_json_ready_and_sorted(self):
        registry = PerfRegistry(enabled=True)
        with registry.span("z.late"):
            pass
        with registry.span("a.early"):
            pass
        registry.incr("m")
        snap = registry.snapshot()
        assert list(snap["spans"]) == ["a.early", "z.late"]
        assert list(snap["span_counts"]) == ["a.early", "z.late"]
        assert snap["counters"] == {"m": 1}
        assert "allocations" not in snap

    def test_allocation_snapshot_requires_tracing(self):
        registry = PerfRegistry(enabled=True)
        assert registry.allocation_snapshot() is None
